//! Lightweight item-level recursive-descent parser.
//!
//! This is not a full Rust grammar — it recovers exactly the structure the
//! rules need from the lossless token stream: every `fn` item (name, owner
//! `impl`/`trait` type, visibility, signature and body token ranges,
//! `#[cfg(test)]` classification, `// dcst-hot` marking), every named
//! `mod` (with its `#[cfg(…)]` attributes, for the feature-gate symmetry
//! rule), and balanced-bracket maps for expression-level scans. Items it
//! does not understand are skipped by bracket/semicolon balancing, so an
//! unparseable construct degrades to "no items found there", never a
//! panic.

use crate::lexer::{lex, strip_source, Token};
use std::collections::HashMap;

/// A parsed `.rs` file: the token stream plus recovered item structure.
/// Positions used throughout are indices into `sig` (the significant,
/// non-trivia token list); `sig[i]` indexes into `tokens`.
pub struct ParsedFile {
    pub src: String,
    pub raw_lines: Vec<String>,
    pub stripped: Vec<String>,
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of every non-trivia token.
    pub sig: Vec<usize>,
    /// Open→close matching over `sig` positions for `()`, `[]`, `{}`.
    pub brackets: HashMap<usize, usize>,
    pub fns: Vec<FnItem>,
    pub mods: Vec<ModItem>,
}

#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Base ident of the enclosing `impl` self-type or `trait`, if any.
    pub owner: Option<String>,
    pub is_pub: bool,
    pub line: u32,
    /// `sig` range `[fn_kw, body_open)` — modifiers excluded, so it starts
    /// at the `fn` keyword.
    pub sig_range: (usize, usize),
    /// `sig` positions of the parameter-list parens `(` and `)`.
    pub params: (usize, usize),
    /// `sig` positions of the body braces, if the fn has a body.
    pub body: Option<(usize, usize)>,
    /// Under `#[cfg(test)]` (own attrs or any enclosing mod/impl).
    pub in_test: bool,
    /// Carries a `// dcst-hot` marker in the comment run directly above.
    pub hot: bool,
    /// Innermost enclosing named mod, as an index into `ParsedFile::mods`.
    pub mod_id: Option<usize>,
}

#[derive(Debug, Clone)]
pub struct ModItem {
    pub name: String,
    pub line: u32,
    /// Inner predicate of each `#[cfg(…)]` attribute, normalized with all
    /// whitespace removed (e.g. `feature="metrics"`, `not(dcst_model_check)`).
    pub cfgs: Vec<String>,
    pub parent: Option<usize>,
    pub in_test: bool,
}

impl ParsedFile {
    pub fn new(src: &str) -> ParsedFile {
        let tokens = lex(src);
        let sig: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].kind.is_trivia())
            .collect();
        let brackets = match_brackets(&tokens, &sig, src);
        let mut pf = ParsedFile {
            raw_lines: src.lines().map(str::to_string).collect(),
            stripped: strip_source(src),
            src: src.to_string(),
            tokens,
            sig,
            brackets,
            fns: Vec::new(),
            mods: Vec::new(),
        };
        let end = pf.sig.len();
        Parser { f: &mut pf }.items(0, end, None, None, false);
        pf
    }

    /// Text of the significant token at `sig` position `i`.
    pub fn text(&self, i: usize) -> &str {
        self.tokens[self.sig[i]].text(&self.src)
    }

    pub fn line(&self, i: usize) -> u32 {
        self.tokens[self.sig[i]].line
    }

    pub fn kind(&self, i: usize) -> crate::lexer::TokKind {
        self.tokens[self.sig[i]].kind
    }

    /// Innermost fn whose body contains `sig` position `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(o, c)| o < i && i < c))
            .max_by_key(|f| f.body.unwrap().0)
    }

    /// True when the fn or any ancestor mod is `#[cfg(test)]`.
    pub fn fn_in_test(&self, f: &FnItem) -> bool {
        if f.in_test {
            return true;
        }
        let mut m = f.mod_id;
        while let Some(id) = m {
            if self.mods[id].in_test {
                return true;
            }
            m = self.mods[id].parent;
        }
        false
    }

    /// Join the token texts of `sig` range `[a, b)` with single spaces.
    pub fn span_text(&self, a: usize, b: usize) -> String {
        let mut out = String::new();
        for i in a..b.min(self.sig.len()) {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(self.text(i));
        }
        out
    }
}

fn match_brackets(tokens: &[Token], sig: &[usize], src: &str) -> HashMap<usize, usize> {
    let mut map = HashMap::new();
    let mut stack: Vec<(usize, char)> = Vec::new();
    for (pos, &ti) in sig.iter().enumerate() {
        let t = tokens[ti].text(src);
        match t {
            "(" | "[" | "{" => stack.push((pos, t.chars().next().unwrap_or('('))),
            ")" | "]" | "}" => {
                let want = match t {
                    ")" => '(',
                    "]" => '[',
                    _ => '{',
                };
                // Pop through mismatched openers (malformed input) so one
                // stray bracket can't wedge the whole map.
                while let Some((open, c)) = stack.pop() {
                    if c == want {
                        map.insert(open, pos);
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    map
}

struct Parser<'a> {
    f: &'a mut ParsedFile,
}

impl Parser<'_> {
    fn text(&self, i: usize) -> &str {
        self.f.tokens[self.f.sig[i]].text(&self.f.src)
    }

    fn close_of(&self, open: usize, end: usize) -> usize {
        self.f.brackets.get(&open).copied().unwrap_or(end)
    }

    /// Parse the items in `sig` range `[i, end)`.
    fn items(
        &mut self,
        mut i: usize,
        end: usize,
        owner: Option<&str>,
        mod_id: Option<usize>,
        in_test: bool,
    ) {
        while i < end {
            let item_start = i;
            let mut attrs: Vec<String> = Vec::new();
            // Outer/inner attributes.
            while i < end && self.text(i) == "#" {
                let mut j = i + 1;
                if j < end && self.text(j) == "!" {
                    j += 1;
                }
                if j < end && self.text(j) == "[" {
                    let close = self.close_of(j, end);
                    attrs.push(self.attr_text(i, close.min(end - 1)));
                    i = close.saturating_add(1).min(end);
                } else {
                    i += 1;
                }
            }
            if i >= end {
                return;
            }
            let item_test = in_test || attrs.iter().any(|a| is_test_attr(a));
            // Modifiers before the item keyword.
            let mut is_pub = false;
            loop {
                if i >= end {
                    return;
                }
                match self.text(i) {
                    "pub" => {
                        is_pub = true;
                        i += 1;
                        if i < end && self.text(i) == "(" {
                            i = self.close_of(i, end) + 1;
                        }
                    }
                    "unsafe" | "const" | "async" | "default" => {
                        // `const` as a modifier (`const fn`) vs a `const`
                        // item: only treat it as a modifier when an item
                        // keyword follows.
                        if self.text(i) == "const"
                            && !matches!(
                                self.text((i + 1).min(end - 1)),
                                "fn" | "unsafe" | "extern" | "async"
                            )
                        {
                            break;
                        }
                        i += 1;
                    }
                    "extern" => {
                        // `extern "C" fn` modifier or `extern "C" { … }` /
                        // `extern crate` item — decide by lookahead.
                        let next = if i + 1 < end { self.text(i + 1) } else { "" };
                        if next.starts_with('"') {
                            let after = if i + 2 < end { self.text(i + 2) } else { "" };
                            if after == "fn" {
                                i += 2;
                                continue;
                            }
                        }
                        break;
                    }
                    _ => break,
                }
            }
            if i >= end {
                return;
            }
            match self.text(i) {
                "fn" => i = self.fn_item(i, end, owner, mod_id, item_test, is_pub, item_start),
                "mod" => i = self.mod_item(i, end, &attrs, mod_id, item_test),
                "impl" => i = self.impl_like(i, end, mod_id, item_test, ImplKind::Impl),
                "trait" => i = self.impl_like(i, end, mod_id, item_test, ImplKind::Trait),
                "struct" | "enum" | "union" => i = self.skip_struct_like(i, end),
                "static" | "const" | "type" | "use" => i = self.skip_to_semi(i, end),
                "extern" => i = self.skip_extern(i, end),
                "macro_rules" => i = self.skip_macro_rules(i, end),
                _ => i += 1,
            }
        }
    }

    fn attr_text(&self, a: usize, b: usize) -> String {
        let mut s = String::new();
        for i in a..=b.min(self.f.sig.len() - 1) {
            s.push_str(self.text(i));
        }
        s
    }

    /// Parse one `fn` item with `i` at the `fn` keyword; returns the
    /// position just past the item.
    #[allow(clippy::too_many_arguments)]
    fn fn_item(
        &mut self,
        i: usize,
        end: usize,
        owner: Option<&str>,
        mod_id: Option<usize>,
        in_test: bool,
        is_pub: bool,
        item_start: usize,
    ) -> usize {
        if i + 1 >= end {
            return end;
        }
        let name = self.text(i + 1).to_string();
        let mut j = i + 2;
        if j < end && self.text(j) == "<" {
            j = self.skip_angles(j, end);
        }
        if j >= end || self.text(j) != "(" {
            return i + 1; // not a fn shape we understand; resync
        }
        let params_open = j;
        let params_close = self.close_of(j, end);
        j = params_close + 1;
        // Find the body `{` or the terminating `;`, skipping balanced
        // groups (so braces inside `[u8; { N }]` return types stay inert).
        let mut body = None;
        while j < end {
            match self.text(j) {
                "(" | "[" => j = self.close_of(j, end) + 1,
                "{" => {
                    body = Some((j, self.close_of(j, end)));
                    break;
                }
                ";" => break,
                _ => j += 1,
            }
        }
        let hot = self.hot_marker_above(item_start) || self.hot_marker_between(item_start, i);
        self.f.fns.push(FnItem {
            name,
            owner: owner.map(str::to_string),
            is_pub,
            line: self.f.tokens[self.f.sig[i]].line,
            sig_range: (i, body.map_or(j, |(o, _)| o)),
            params: (params_open, params_close),
            body,
            in_test,
            hot,
            mod_id,
        });
        match body {
            Some((_, close)) => close + 1,
            None => (j + 1).min(end),
        }
    }

    /// Scan the raw token stream backwards from the item's first token
    /// (attribute or keyword) through the contiguous trivia run above; a
    /// plain `// dcst-hot` line comment marks the fn hot. Doc comments
    /// merely *mentioning* the marker in prose do not count.
    fn hot_marker_above(&self, item_start_sig: usize) -> bool {
        let Some(&first) = self.f.sig.get(item_start_sig) else {
            return false;
        };
        let mut k = first;
        while k > 0 {
            k -= 1;
            let t = &self.f.tokens[k];
            if !t.kind.is_trivia() {
                return false;
            }
            if t.kind.is_comment() && is_hot_marker(t.text(&self.f.src)) {
                return true;
            }
        }
        false
    }

    /// A `// dcst-hot` marker may also sit between the item's attributes
    /// or modifiers and the `fn` keyword (e.g. below `#[inline]`).
    fn hot_marker_between(&self, a_sig: usize, b_sig: usize) -> bool {
        let (Some(&a), Some(&b)) = (self.f.sig.get(a_sig), self.f.sig.get(b_sig)) else {
            return false;
        };
        self.f.tokens[a..b]
            .iter()
            .any(|t| t.kind.is_comment() && is_hot_marker(t.text(&self.f.src)))
    }

    fn mod_item(
        &mut self,
        i: usize,
        end: usize,
        attrs: &[String],
        parent: Option<usize>,
        in_test: bool,
    ) -> usize {
        if i + 1 >= end {
            return end;
        }
        let name = self.text(i + 1).to_string();
        if i + 2 < end && self.text(i + 2) == "{" {
            let open = i + 2;
            let close = self.close_of(open, end);
            let id = self.f.mods.len();
            self.f.mods.push(ModItem {
                name,
                line: self.f.tokens[self.f.sig[i]].line,
                cfgs: attrs.iter().filter_map(|a| cfg_predicate(a)).collect(),
                parent,
                in_test,
            });
            // A mod does not change the impl owner.
            self.items(open + 1, close, None, Some(id), in_test);
            close + 1
        } else {
            (i + 2).min(end) + 1 // `mod name;`
        }
    }

    /// `impl …` / `trait …` blocks: recover the owner name and recurse
    /// into the body so methods get attributed.
    fn impl_like(
        &mut self,
        i: usize,
        end: usize,
        mod_id: Option<usize>,
        in_test: bool,
        kind: ImplKind,
    ) -> usize {
        let mut j = i + 1;
        if j < end && self.text(j) == "<" {
            j = self.skip_angles(j, end);
        }
        // Collect header tokens up to the body `{` (or `;` for
        // `trait Foo = …;` style aliases we just skip).
        let header_start = j;
        let mut body_open = None;
        while j < end {
            match self.text(j) {
                "(" | "[" => j = self.close_of(j, end) + 1,
                "<" => j = self.skip_angles(j, end),
                "{" => {
                    body_open = Some(j);
                    break;
                }
                ";" => break,
                _ => j += 1,
            }
        }
        let Some(open) = body_open else {
            return (j + 1).min(end);
        };
        let owner = self.owner_from_header(header_start, open, kind);
        let close = self.close_of(open, end);
        self.items(open + 1, close, owner.as_deref(), mod_id, in_test);
        close + 1
    }

    /// Base ident of the implemented-on type: the last top-level ident
    /// after `for` if present (`impl Debug for Worker<T>` → `Worker`),
    /// else of the whole header (`impl Worker<T>` → `Worker`).
    fn owner_from_header(&self, a: usize, b: usize, kind: ImplKind) -> Option<String> {
        if kind == ImplKind::Trait {
            return (a < b).then(|| self.text(a).to_string());
        }
        let mut start = a;
        for i in a..b {
            if self.text(i) == "for" {
                start = i + 1;
            }
            if self.text(i) == "where" {
                break;
            }
        }
        let mut last = None;
        let mut i = start;
        while i < b {
            match self.text(i) {
                "<" => i = self.skip_angles(i, b),
                "where" => break,
                "dyn" | "mut" | "&" | "*" | "'" => i += 1,
                t if self.f.kind(i) == crate::lexer::TokKind::Ident => {
                    last = Some(t.to_string());
                    i += 1;
                }
                _ => i += 1,
            }
        }
        last
    }

    /// Skip a balanced `<…>` group starting at `i` (pointing at `<`);
    /// `->` arrows inside do not close the group. Returns the position
    /// after the matching `>`, or a safe resync point.
    fn skip_angles(&self, i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            match self.text(j) {
                "<" => depth += 1,
                ">" => {
                    if j > 0 && self.text(j - 1) == "-" {
                        // `->` arrow: not a closer.
                    } else {
                        depth -= 1;
                        if depth == 0 {
                            return j + 1;
                        }
                    }
                }
                "(" | "[" => {
                    j = self.close_of(j, end);
                }
                "{" | ";" => return j, // runaway generics: resync
                _ => {}
            }
            j += 1;
        }
        end
    }

    fn skip_struct_like(&self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        while j < end {
            match self.text(j) {
                "(" | "[" => j = self.close_of(j, end) + 1,
                "<" => j = self.skip_angles(j, end),
                "{" => return self.close_of(j, end) + 1,
                ";" => return j + 1,
                _ => j += 1,
            }
        }
        end
    }

    fn skip_to_semi(&self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        while j < end {
            match self.text(j) {
                "(" | "[" | "{" => j = self.close_of(j, end) + 1,
                ";" => return j + 1,
                _ => j += 1,
            }
        }
        end
    }

    fn skip_extern(&self, i: usize, end: usize) -> usize {
        // `extern crate foo;` or `extern "C" { … }`.
        let mut j = i + 1;
        while j < end {
            match self.text(j) {
                "{" => return self.close_of(j, end) + 1,
                ";" => return j + 1,
                _ => j += 1,
            }
        }
        end
    }

    fn skip_macro_rules(&self, i: usize, end: usize) -> usize {
        // `macro_rules ! name { … }` (any delimiter accepted).
        let mut j = i + 1;
        while j < end {
            match self.text(j) {
                "{" | "(" | "[" => return self.close_of(j, end) + 1,
                ";" => return j + 1,
                _ => j += 1,
            }
        }
        end
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ImplKind {
    Impl,
    Trait,
}

/// A marker comment is a plain `//` (not `///` or `//!`) whose content
/// starts with `dcst-hot`.
fn is_hot_marker(comment: &str) -> bool {
    let Some(rest) = comment.strip_prefix("//") else {
        return false;
    };
    if rest.starts_with('/') || rest.starts_with('!') {
        return false;
    }
    rest.trim_start().starts_with("dcst-hot")
}

fn is_test_attr(attr: &str) -> bool {
    attr.starts_with("#[cfg(") && attr.contains("test")
}

/// `#[cfg(PRED)]` → `Some("PRED")` with whitespace already removed by the
/// token-join; other attributes → `None`.
fn cfg_predicate(attr: &str) -> Option<String> {
    let inner = attr.strip_prefix("#[cfg(")?.strip_suffix(")]")?;
    Some(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_free_and_method_fns() {
        let src = "\
fn free(a: u32) -> u32 { a }
struct W;
impl W {
    pub fn method(&self) {}
}
impl std::fmt::Debug for W {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
}
";
        let pf = ParsedFile::new(src);
        let names: Vec<(Option<&str>, &str)> = pf
            .fns
            .iter()
            .map(|f| (f.owner.as_deref(), f.name.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![(None, "free"), (Some("W"), "method"), (Some("W"), "fmt"),]
        );
        assert!(pf.fns[1].is_pub && !pf.fns[0].is_pub);
    }

    #[test]
    fn cfg_test_marks_items_transitively() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn helper() {}
    #[test]
    fn case() {}
}
";
        let pf = ParsedFile::new(src);
        let by_name = |n: &str| pf.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!pf.fn_in_test(by_name("live")));
        assert!(pf.fn_in_test(by_name("helper")));
        assert!(pf.fn_in_test(by_name("case")));
    }

    #[test]
    fn hot_marker_is_detected_through_attrs_and_docs() {
        let src = "\
/// Docs.
// dcst-hot
#[inline(always)]
pub unsafe fn kernel(p: *mut f64) {}

pub fn cold() {}

#[allow(clippy::too_many_arguments)]
// dcst-hot
pub fn below_attr() {}

/// Prose merely mentioning dcst-hot does not mark.
pub fn prose() {}
";
        let pf = ParsedFile::new(src);
        let hot = |n: &str| pf.fns.iter().find(|f| f.name == n).unwrap().hot;
        assert!(hot("kernel"));
        assert!(!hot("cold"));
        assert!(hot("below_attr"));
        assert!(!hot("prose"));
    }

    #[test]
    fn mod_cfgs_are_recovered() {
        let src = "\
#[cfg(feature = \"metrics\")]
mod imp {
    pub fn add(n: u64) {}
}
#[cfg(not(feature = \"metrics\"))]
mod imp {
    pub fn add(_n: u64) {}
}
";
        let pf = ParsedFile::new(src);
        assert_eq!(pf.mods.len(), 2);
        assert_eq!(pf.mods[0].cfgs, vec!["feature=\"metrics\"".to_string()]);
        assert_eq!(
            pf.mods[1].cfgs,
            vec!["not(feature=\"metrics\")".to_string()]
        );
        assert!(pf.fns.iter().all(|f| f.mod_id.is_some()));
    }

    #[test]
    fn generic_fns_with_angle_arrows_parse() {
        let src = "fn apply<F: Fn(u32) -> u32, const N: usize>(f: F) -> [u32; N] { todo!() }";
        let pf = ParsedFile::new(src);
        assert_eq!(pf.fns.len(), 1);
        assert_eq!(pf.fns[0].name, "apply");
        assert!(pf.fns[0].body.is_some());
    }

    #[test]
    fn enclosing_fn_is_innermost() {
        let src = "\
fn outer() {
    let x = 1;
}
fn second() { let y = 2; }
";
        let pf = ParsedFile::new(src);
        let x_pos = (0..pf.sig.len()).find(|&i| pf.text(i) == "x").unwrap();
        assert_eq!(pf.enclosing_fn(x_pos).unwrap().name, "outer");
        let y_pos = (0..pf.sig.len()).find(|&i| pf.text(i) == "y").unwrap();
        assert_eq!(pf.enclosing_fn(y_pos).unwrap().name, "second");
    }
}
