//! `dcst-analyze` — the workspace's own static analyzer.
//!
//! A dependency-free lexer + item-level parser for Rust source, and a
//! rule engine with two entry points:
//!
//! * [`rules::run_legacy`] — the original `xtask lint` rules
//!   (unsafe-safety, static-mut, sleep-poll, pool-sync), now running on
//!   the lossless lexer instead of a line-oriented state machine.
//! * [`rules::run_full`] — everything above plus the four analysis
//!   passes: atomic-ordering manifest conformance ([`rules::orderings`]),
//!   hot-path purity ([`rules::hotpath`]), feature-gate symmetry
//!   ([`rules::featuresym`]), and the static task-footprint lint
//!   ([`rules::footprint`]).
//!
//! The tree is walked and parsed exactly once ([`workspace::Workspace`]);
//! every rule reads the same shared [`parser::ParsedFile`]s. `xtask`
//! drives both entry points (`cargo run -p xtask -- lint|analyze`).

pub mod lexer;
pub mod manifest;
pub mod parser;
pub mod rules;
pub mod workspace;

pub use rules::{run_full, run_legacy, Violation};
pub use workspace::Workspace;
