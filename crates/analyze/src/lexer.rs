//! Hand-rolled lossless Rust lexer.
//!
//! The whole static-analysis subsystem sits on this one pass: the token
//! stream is *lossless* (concatenating every token's text reproduces the
//! input byte-for-byte), every token carries the 1-based line of its first
//! character, and malformed input never panics — an unterminated literal
//! or comment simply extends to end-of-input. Those three properties are
//! what the rest of the crate (stripper, parser, rules) and the proptest
//! suite rely on.
//!
//! The tricky corners the previous regex-era stripper got wrong are
//! handled structurally here:
//!
//! * raw / byte / C strings with any number of `#`s (`r"…"`, `r#"…"#`,
//!   `br##"…"##`, `c"…"`), including the raw-identifier form `r#match`;
//! * nested block comments (`/* /* */ */` — depth-counted like rustc);
//! * char literals vs lifetimes (`'a'` vs `'a`), including escaped-quote
//!   chars (`'\''`) and multibyte scalar contents (`'é'`);
//! * multibyte characters adjacent to literal prefixes — the old stripper
//!   byte-truncated `char as u8` in its identifier guard, so an ident
//!   ending in a non-ASCII char (e.g. `ér"…"`) could flip a cooked string
//!   into a raw-string parse and desynchronize the rest of the file.

/// What a token is. `text(src)` on any kind returns the exact source slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Spaces, tabs, newlines, any `char::is_whitespace` run.
    Whitespace,
    /// `// …` up to (not including) the newline.
    LineComment,
    /// `/* … */`, nesting-aware; unterminated runs to end-of-input.
    BlockComment,
    /// Identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// `'label` / `'static` — the tick plus the identifier.
    Lifetime,
    /// Cooked string (`"…"`, `b"…"`, `c"…"`) with escapes.
    Str,
    /// Raw string (`r"…"`, `br#"…"#`, `cr##"…"##`), no escapes.
    RawStr,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (integer or float, any base, with suffix).
    Number,
    /// Any other single character (`+`, `::` is two tokens, …).
    Punct,
}

impl TokKind {
    /// Kinds whose contents must never influence keyword/pattern scans.
    pub fn is_opaque(self) -> bool {
        matches!(
            self,
            TokKind::LineComment
                | TokKind::BlockComment
                | TokKind::Str
                | TokKind::RawStr
                | TokKind::Char
        )
    }

    /// Comment kinds (skipped by the parser, kept for marker scans).
    pub fn is_comment(self) -> bool {
        matches!(self, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Kinds the parser skips entirely.
    pub fn is_trivia(self) -> bool {
        self.is_comment() || self == TokKind::Whitespace
    }
}

/// One token: a kind plus a byte range into the source and the 1-based
/// line its first byte sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Token {
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Cursor<'s> {
    src: &'s str,
    pos: usize,
    line: u32,
}

impl<'s> Cursor<'s> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn bump_while(&mut self, f: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&f) {
            self.bump();
        }
    }
}

/// Lex `src` into a lossless token stream: the tokens tile `[0, src.len())`
/// exactly, so `tokens.iter().map(|t| t.text(src)).collect::<String>()`
/// equals `src`. Never panics, for any input.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src,
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let start = cur.pos;
        let line = cur.line;
        let kind = next_kind(&mut cur, c);
        debug_assert!(cur.pos > start, "lexer must always make progress");
        out.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
        });
    }
    out
}

fn next_kind(cur: &mut Cursor<'_>, c: char) -> TokKind {
    if c.is_whitespace() {
        cur.bump_while(char::is_whitespace);
        return TokKind::Whitespace;
    }
    if c == '/' {
        match cur.peek_at(1) {
            Some('/') => {
                cur.bump_while(|c| c != '\n');
                return TokKind::LineComment;
            }
            Some('*') => {
                lex_block_comment(cur);
                return TokKind::BlockComment;
            }
            _ => {
                cur.bump();
                return TokKind::Punct;
            }
        }
    }
    if c == '\'' {
        return lex_tick(cur);
    }
    if c == '"' {
        lex_cooked_string(cur);
        return TokKind::Str;
    }
    if c.is_ascii_digit() {
        lex_number(cur);
        return TokKind::Number;
    }
    if is_ident_start(c) {
        return lex_ident_or_prefixed(cur);
    }
    cur.bump();
    TokKind::Punct
}

fn lex_block_comment(cur: &mut Cursor<'_>) {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(), cur.peek_at(1)) {
            (Some('*'), Some('/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break, // unterminated: runs to EOF
        }
    }
}

/// `'` starts either a lifetime or a char literal. Disambiguation follows
/// rustc: `'ident` not followed by a closing `'` is a lifetime; anything
/// else is a char literal.
fn lex_tick(cur: &mut Cursor<'_>) -> TokKind {
    cur.bump(); // '\''
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume the escape, then scan for the
            // closing quote (stopping at a newline keeps truncated input
            // from swallowing line structure — the old stripper's bug).
            cur.bump();
            if matches!(cur.peek(), None | Some('\n')) {
                return TokKind::Char; // truncated `'\` — leave the newline
            }
            cur.bump(); // the escaped char ('\'' included — it cannot close)
            while let Some(c) = cur.peek() {
                if c == '\n' {
                    break;
                }
                let done = c == '\'';
                cur.bump();
                if done {
                    break;
                }
            }
            TokKind::Char
        }
        Some(c) if is_ident_start(c) && cur.peek_at(1) != Some('\'') => {
            cur.bump_while(is_ident_continue);
            TokKind::Lifetime
        }
        Some('\'') | None => TokKind::Char, // `''` or lone trailing tick
        Some(_) => {
            cur.bump(); // the content char (any scalar, multibyte fine)
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            TokKind::Char
        }
    }
}

/// Cooked string body (after any prefix): escapes, multi-line, runs to EOF
/// when unterminated.
fn lex_cooked_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening '"'
    while let Some(c) = cur.peek() {
        cur.bump();
        match c {
            '\\' => {
                cur.bump(); // skip escaped char (incl. `\"` and `\\`)
            }
            '"' => return,
            _ => {}
        }
    }
}

/// Raw string body: `#`s were already counted; scan for `"` + that many
/// `#`s. No escapes exist in raw strings.
fn lex_raw_string(cur: &mut Cursor<'_>, hashes: usize) {
    cur.bump(); // opening '"'
    'scan: while let Some(c) = cur.peek() {
        cur.bump();
        if c == '"' {
            for _ in 0..hashes {
                if cur.peek() != Some('#') {
                    continue 'scan;
                }
                cur.bump();
            }
            return;
        }
    }
}

fn lex_number(cur: &mut Cursor<'_>) {
    cur.bump();
    loop {
        cur.bump_while(is_ident_continue);
        // Exponent sign: `1e+10` / `2E-3`.
        let last = cur.src[..cur.pos].chars().next_back();
        if matches!(last, Some('e' | 'E'))
            && matches!(cur.peek(), Some('+' | '-'))
            && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit())
        {
            cur.bump();
            continue;
        }
        // Float dot: consume `.` only when followed by a digit (leaves
        // `0..n` ranges and `1.max(2)` method calls intact).
        if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            cur.bump();
            continue;
        }
        return;
    }
}

/// An identifier, or a literal-prefix identifier (`r` / `b` / `c` / `br` /
/// `cr`) that actually opens a string, or a raw identifier `r#ident`.
fn lex_ident_or_prefixed(cur: &mut Cursor<'_>) -> TokKind {
    let start = cur.pos;
    cur.bump_while(is_ident_continue);
    let ident = &cur.src[start..cur.pos];
    let raw_capable = matches!(ident, "r" | "br" | "cr");
    let cooked_prefix = matches!(ident, "b" | "c");
    match cur.peek() {
        Some('"') if raw_capable => {
            lex_raw_string(cur, 0);
            TokKind::RawStr
        }
        Some('"') if cooked_prefix => {
            lex_cooked_string(cur);
            TokKind::Str
        }
        Some('\'') if ident == "b" => {
            // Byte-char literal b'x'. Reuse the tick logic; a byte char is
            // never a lifetime, but lex_tick only yields Lifetime for
            // `'ident`-without-close, which can't follow `b` in valid code
            // — and on invalid code either answer strips fine.
            lex_tick(cur);
            TokKind::Char
        }
        Some('#') if raw_capable => {
            let mut probe = 0usize;
            while cur.peek_at(probe) == Some('#') {
                probe += 1;
            }
            match cur.peek_at(probe) {
                Some('"') => {
                    for _ in 0..probe {
                        cur.bump();
                    }
                    lex_raw_string(cur, probe);
                    TokKind::RawStr
                }
                Some(c2) if ident == "r" && probe == 1 && is_ident_start(c2) => {
                    cur.bump(); // '#'
                    cur.bump_while(is_ident_continue);
                    TokKind::Ident // raw identifier r#match
                }
                _ => TokKind::Ident,
            }
        }
        _ => TokKind::Ident,
    }
}

/// Replace the contents of comments and string/char literals with spaces,
/// preserving line structure, so keyword and pattern scans never match
/// inside text. Lifetimes are kept verbatim (so `&'static mut` cannot be
/// mistaken for a `static mut` item downstream).
///
/// Line semantics mirror `str::lines()`: the returned `Vec` always has
/// exactly `src.lines().count()` entries, for any input — including
/// truncated literals and unterminated comments.
pub fn strip_source(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur_line = String::new();
    for tok in lex(src) {
        let blank = tok.kind.is_opaque();
        for c in tok.text(src).chars() {
            if c == '\n' {
                out.push(std::mem::take(&mut cur_line));
            } else if blank {
                cur_line.push(' ');
            } else {
                cur_line.push(c);
            }
        }
    }
    if !cur_line.is_empty() {
        out.push(cur_line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rejoin(src: &str) -> String {
        lex(src).iter().map(|t| t.text(src)).collect()
    }

    fn strip_str(src: &str) -> String {
        strip_source(src).join("\n")
    }

    #[test]
    fn round_trips_basic_source() {
        let src = "fn main() { let x = 1 + 2; }\n";
        assert_eq!(rejoin(src), src);
    }

    #[test]
    fn raw_strings_with_hashes_round_trip_and_strip() {
        for src in [
            "let a = r\"un\\safe\";",
            "let b = r#\"quote \" inside\"#;",
            "let c = r##\"ends with \"# inside\"##;",
            "let d = br#\"bytes \" here\"#;",
            "let e = cr\"c string\";",
        ] {
            assert_eq!(rejoin(src), src);
            let s = strip_str(src);
            assert!(!s.contains("safe") && !s.contains("inside") && !s.contains("here"));
            assert!(s.starts_with("let "));
        }
    }

    #[test]
    fn raw_string_content_never_confuses_rules() {
        let src = "let s = r#\"unsafe { static mut } \"#; let t = 1;";
        let s = strip_str(src);
        assert!(!s.contains("unsafe") && !s.contains("static"));
        assert!(s.contains("let t = 1;"));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let src = "let r#match = r#fn; let s = \"x\";";
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text(src) == "r#match"));
        assert!(strip_str(src).contains("r#match"));
    }

    #[test]
    fn nested_block_comments_strip_fully() {
        let src = "let a = /* unsafe /* nested */ still */ 1; /* /*/ */ */ let b = 2;";
        let s = strip_str(src);
        assert!(!s.contains("unsafe") && !s.contains("nested") && !s.contains("still"));
        assert!(s.contains("let a =") && s.contains("1;") && s.contains("let b = 2;"));
    }

    #[test]
    fn char_literals_including_quote_and_escape() {
        // `'"'` must not open a string state; `'\''` must not leave a
        // stray tick that re-synchronizes wrongly.
        let src = "let a = '\"'; let b = '\\''; let c = unsafe { g() };";
        let s = strip_str(src);
        assert!(
            s.contains("unsafe"),
            "code after char literals must survive: {s}"
        );
        assert!(!s.contains('"'));
    }

    #[test]
    fn lifetimes_survive_stripping() {
        let src = "fn f(x: &'static mut u32, y: &'a str) {}";
        let s = strip_str(src);
        assert!(s.contains("&'static mut"));
        assert!(s.contains("&'a str"));
    }

    #[test]
    fn multibyte_adjacent_to_prefix_stays_cooked() {
        // Old stripper bug: `chars[k-1] as u8` truncated 'é' (U+00E9) to a
        // non-ident byte, so the guard passed and `r"…"` semantics were
        // applied mid-identifier. The lexer scans the full identifier
        // (`ér`) first, so the following quote is a plain cooked string.
        let src = "let \u{e9}r = 1; let s = \"static mut\"; let u = unsafe { g() };";
        assert_eq!(rejoin(src), src);
        let s = strip_str(src);
        assert!(!s.contains("static"));
        assert!(s.contains("unsafe"));
    }

    #[test]
    fn truncated_escape_keeps_line_structure() {
        // Old stripper bug: an unterminated `'\` escape scan swallowed the
        // newline, desynchronizing the stripped line count from the raw
        // one (which the lint asserts on). Three lines in, three out.
        let src = "let a = '\\\nstatic mut X: u32 = 0;\nlet b = 1;";
        let stripped = strip_source(src);
        assert_eq!(stripped.len(), src.lines().count());
        assert!(stripped[1].contains("static mut"), "line 2 must stay code");
    }

    #[test]
    fn line_counts_match_for_edge_inputs() {
        for src in [
            "",
            "\n",
            "a",
            "a\n",
            "a\n\n",
            "\"unterminated\nacross lines",
            "/* unterminated\ncomment",
            "r#\"unterminated raw\nstring",
            "'\\",
            "b'",
        ] {
            assert_eq!(rejoin(src), src, "lossless on {src:?}");
            assert_eq!(
                strip_source(src).len(),
                src.lines().count(),
                "line count on {src:?}"
            );
        }
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let src = "let a = 0..5; let b = 1.max(2); let c = 1.5e-3; let d = 0x1f_u32;";
        assert_eq!(rejoin(src), src);
        let toks = lex(src);
        let nums: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| t.text(src))
            .collect();
        assert!(nums.contains(&"1.5e-3"));
        assert!(nums.contains(&"0x1f_u32"));
        assert!(nums.contains(&"0") && nums.contains(&"5"));
    }

    #[test]
    fn token_lines_are_accurate() {
        let src = "a\nb /* c\nd */ e\nf";
        let toks = lex(src);
        let line_of = |text: &str| {
            toks.iter()
                .find(|t| t.text(src) == text)
                .map(|t| t.line)
                .unwrap_or(0)
        };
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 2);
        assert_eq!(line_of("e"), 3);
        assert_eq!(line_of("f"), 4);
    }
}
