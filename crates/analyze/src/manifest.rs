//! Minimal TOML-subset reader for `specs/orderings.toml`.
//!
//! The manifest is an array of `[[site]]` tables with string/integer
//! values — the only TOML this parser understands, because that is the
//! only TOML the workspace contains (no external deps, by constraint).
//! Unknown constructs are hard errors rather than silent skips: a
//! manifest that cannot be read completely must fail the analysis run,
//! not weaken it.

/// One classified atomic site (or group of identical sites).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Site {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// Qualified fn (`Owner::name` or bare `name`; `-` = outside any fn).
    pub func: String,
    /// Trailing field path of the atomic (`top`, `head.index`, `-` for fences).
    pub atomic: String,
    /// `load` / `store` / `compare_exchange` / `fetch_add` / … / `fence`.
    pub op: String,
    /// Comma-joined ordering list as written (`SeqCst`, `SeqCst,Relaxed`).
    pub order: String,
    /// How many identical sites this entry covers (default 1).
    pub count: usize,
    /// One-line justification; must be non-empty and non-placeholder.
    pub why: String,
    /// Line in the manifest (for error reporting).
    pub line: u32,
}

impl Site {
    /// Identity under which real sites are grouped and matched.
    pub fn key(&self) -> (String, String, String, String, String) {
        (
            self.file.clone(),
            self.func.clone(),
            self.atomic.clone(),
            self.op.clone(),
            self.order.clone(),
        )
    }
}

/// Parse the manifest text. Returns the sites or a line-tagged error.
pub fn parse(text: &str) -> Result<Vec<Site>, String> {
    let mut sites: Vec<Site> = Vec::new();
    let mut in_site = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[site]]" {
            sites.push(Site {
                count: 1,
                line: lineno,
                ..Site::default()
            });
            in_site = true;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {lineno}: unsupported table `{line}` (only [[site]] is allowed)"
            ));
        }
        if !in_site {
            return Err(format!("line {lineno}: key outside any [[site]] table"));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "line {lineno}: expected `key = value`, got `{line}`"
            ));
        };
        let key = key.trim();
        let value = value.trim();
        let site = sites.last_mut().expect("in_site implies a current site");
        match key {
            "file" => site.file = parse_string(value, lineno)?,
            "fn" => site.func = parse_string(value, lineno)?,
            "atomic" => site.atomic = parse_string(value, lineno)?,
            "op" => site.op = parse_string(value, lineno)?,
            "order" => site.order = parse_string(value, lineno)?,
            "why" => site.why = parse_string(value, lineno)?,
            "count" => {
                site.count = value.parse().map_err(|_| {
                    format!("line {lineno}: `count` must be a plain integer, got `{value}`")
                })?;
            }
            other => return Err(format!("line {lineno}: unknown key `{other}`")),
        }
    }
    for s in &sites {
        for (name, v) in [
            ("file", &s.file),
            ("fn", &s.func),
            ("atomic", &s.atomic),
            ("op", &s.op),
            ("order", &s.order),
        ] {
            if v.is_empty() {
                return Err(format!(
                    "site at line {}: missing required key `{name}`",
                    s.line
                ));
            }
        }
    }
    Ok(sites)
}

fn parse_string(value: &str, lineno: u32) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("line {lineno}: expected a double-quoted string, got `{value}`"))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    return Err(format!("line {lineno}: unsupported escape `\\{other}`"))
                }
                None => return Err(format!("line {lineno}: dangling escape")),
            }
        } else if c == '"' {
            return Err(format!("line {lineno}: unescaped quote inside string"));
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sites_with_defaults() {
        let text = r#"
# comment
[[site]]
file = "crates/runtime/src/pool.rs"
fn = "Pool::wait"
atomic = "outstanding"
op = "load"
order = "Acquire"
why = "pairs with the AcqRel fetch_sub in execute"

[[site]]
file = "vendor/crossbeam-deque/src/chase_lev.rs"
fn = "Worker::pop_lifo"
atomic = "bottom"
op = "store"
order = "Relaxed"
count = 3
why = "owner-only field; the SeqCst fence orders it against steals"
"#;
        let sites = parse(text).unwrap();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].count, 1);
        assert_eq!(sites[1].count, 3);
        assert_eq!(sites[1].func, "Worker::pop_lifo");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("[site]\n").is_err());
        assert!(parse("file = \"x\"\n").is_err());
        assert!(parse("[[site]]\nfile = unquoted\n").is_err());
        assert!(parse("[[site]]\ncount = \"three\"\n").is_err());
        assert!(parse("[[site]]\nfile = \"f\"\n").is_err(), "missing keys");
    }
}
