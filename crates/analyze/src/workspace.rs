//! Workspace loading: walk the tree once, lex/parse every `.rs` file
//! once, and hand the shared representation to all rules.

use crate::parser::ParsedFile;
use std::path::{Path, PathBuf};

/// One parsed source file, addressed by its workspace-relative path.
pub struct SourceFile {
    /// Relative path with forward slashes (`crates/runtime/src/pool.rs`).
    pub rel: String,
    pub parsed: ParsedFile,
}

impl SourceFile {
    pub fn from_source(rel: &str, src: &str) -> SourceFile {
        SourceFile {
            rel: rel.to_string(),
            parsed: ParsedFile::new(src),
        }
    }

    /// Files under a `tests/` directory (integration tests, fixtures).
    pub fn is_test_file(&self) -> bool {
        self.rel.split('/').any(|seg| seg == "tests")
    }
}

pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Parse every `.rs` file under `root`, skipping `target/`, dot-dirs,
    /// and `fixtures/` directories (which hold deliberately-violating
    /// inputs for the analyzer's own tests).
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut paths = Vec::new();
        collect_rs_files(root, &mut paths);
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for path in paths {
            let src = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::from_source(&rel, &src));
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// In-memory workspace for tests.
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: PathBuf::new(),
            files: sources
                .iter()
                .map(|(rel, src)| SourceFile::from_source(rel, src))
                .collect(),
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}
