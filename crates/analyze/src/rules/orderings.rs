//! Atomic-ordering conformance: every atomic operation and fence in the
//! scheduler (`crates/runtime`) and the vendored lock-free deque
//! (`vendor/crossbeam-deque`) must match a checked-in manifest entry in
//! `specs/orderings.toml`, with a one-line justification. A new atomic
//! site, a changed ordering, or a removed site all fail the build until
//! the manifest is updated — DESIGN.md's fence-pairing argument, kept
//! honest mechanically.
//!
//! A *site* is identified by `(file, enclosing fn, atomic field path,
//! operation, ordering list)`. Identical sites in the same fn are grouped
//! and covered by one entry's `count`. Sites in `#[cfg(test)]` items and
//! files under `tests/` are out of scope; `#[cfg(dcst_model_check)]`
//! expression-level sites (the seeded model-checker mutations) are in
//! scope and classified like any other.

use super::{allowed, Violation};
use crate::lexer::TokKind;
use crate::manifest::Site;
use crate::parser::ParsedFile;
use crate::workspace::Workspace;
use std::collections::BTreeMap;

pub const RULE: &str = "orderings";
pub const MANIFEST_PATH: &str = "specs/orderings.toml";

/// Path prefixes whose atomic sites the manifest must cover.
pub const SCOPE: &[&str] = &["crates/runtime/src/", "vendor/crossbeam-deque/src/"];

const OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One atomic site found in the source.
#[derive(Debug, Clone)]
pub struct FoundSite {
    pub file: String,
    pub func: String,
    pub atomic: String,
    pub op: String,
    pub order: String,
    pub line: u32,
}

impl FoundSite {
    fn key(&self) -> (String, String, String, String, String) {
        (
            self.file.clone(),
            self.func.clone(),
            self.atomic.clone(),
            self.op.clone(),
            self.order.clone(),
        )
    }

    fn describe(&self) -> String {
        format!(
            "`{}.{}({})` in `{}`",
            self.atomic, self.op, self.order, self.func
        )
    }
}

/// Every in-scope atomic/fence site in the workspace, suppressed lines
/// excluded.
pub fn find_sites(ws: &Workspace) -> Vec<FoundSite> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !SCOPE.iter().any(|p| file.rel.starts_with(p)) || file.is_test_file() {
            continue;
        }
        scan_file(&file.rel, &file.parsed, &mut out);
    }
    out
}

fn scan_file(rel: &str, pf: &ParsedFile, out: &mut Vec<FoundSite>) {
    let n = pf.sig.len();
    for i in 0..n {
        // Method form: `<path>.op(… Ordering::X …)`.
        if pf.text(i) == "."
            && i + 2 < n
            && pf.kind(i + 1) == TokKind::Ident
            && OPS.contains(&pf.text(i + 1))
            && pf.text(i + 2) == "("
        {
            let close = pf.brackets.get(&(i + 2)).copied().unwrap_or(n - 1);
            let order = orderings_in(pf, i + 3, close);
            if order.is_empty() {
                continue; // `.swap()` on a slice etc. — not an atomic op
            }
            push_site(rel, pf, i, pf.text(i + 1), &order, atomic_path(pf, i), out);
        }
        // Fence form: `fence(Ordering::X)` (free or path-qualified call).
        if pf.kind(i) == TokKind::Ident
            && pf.text(i) == "fence"
            && i + 1 < n
            && pf.text(i + 1) == "("
            && (i == 0 || (pf.text(i - 1) != "." && pf.text(i - 1) != "fn"))
        {
            let close = pf.brackets.get(&(i + 1)).copied().unwrap_or(n - 1);
            let order = orderings_in(pf, i + 2, close);
            if order.is_empty() {
                continue;
            }
            push_site(rel, pf, i, "fence", &order, "-".to_string(), out);
        }
    }
}

fn push_site(
    rel: &str,
    pf: &ParsedFile,
    pos: usize,
    op: &str,
    order: &str,
    atomic: String,
    out: &mut Vec<FoundSite>,
) {
    let in_test = pf.enclosing_fn(pos).is_some_and(|f| pf.fn_in_test(f));
    if in_test {
        return;
    }
    let line = pf.line(pos);
    if allowed(&pf.raw_lines, RULE, line) {
        return;
    }
    let func = pf
        .enclosing_fn(pos)
        .map(|f| match &f.owner {
            Some(o) => format!("{o}::{}", f.name),
            None => f.name.clone(),
        })
        .unwrap_or_else(|| "-".to_string());
    out.push(FoundSite {
        file: rel.to_string(),
        func,
        atomic,
        op: op.to_string(),
        order: order.to_string(),
        line,
    });
}

/// Comma-joined ordering idents appearing as `Ordering::X` inside the
/// argument range `[a, b)`, in source order (two for compare_exchange).
fn orderings_in(pf: &ParsedFile, a: usize, b: usize) -> String {
    let mut found = Vec::new();
    let mut i = a;
    while i + 3 < pf.sig.len() && i + 3 <= b {
        if pf.text(i) == "Ordering"
            && pf.text(i + 1) == ":"
            && pf.text(i + 2) == ":"
            && ORDERINGS.contains(&pf.text(i + 3))
        {
            found.push(pf.text(i + 3).to_string());
            i += 4;
        } else {
            i += 1;
        }
    }
    found.join(",")
}

/// The trailing field path before the `.` at `dot`: up to the last two
/// `.`-joined identifier segments, with a leading `self` dropped —
/// `self.inner.top.load(…)` → `inner.top`, `cancelled.store(…)` →
/// `cancelled`. Non-ident receivers (call results) yield `-`.
fn atomic_path(pf: &ParsedFile, dot: usize) -> String {
    let mut segs: Vec<String> = Vec::new();
    let mut i = dot;
    while i >= 1 && pf.kind(i - 1) == TokKind::Ident {
        segs.push(pf.text(i - 1).to_string());
        if i >= 2 && pf.text(i - 2) == "." {
            i -= 2;
        } else {
            break;
        }
    }
    segs.reverse();
    if segs.first().map(String::as_str) == Some("self") {
        segs.remove(0);
    }
    if segs.is_empty() {
        return "-".to_string();
    }
    let keep = segs.len().saturating_sub(2);
    segs[keep..].join(".")
}

/// Check the found sites against the manifest.
pub fn check(ws: &Workspace, manifest: &[Site]) -> Vec<Violation> {
    let found = find_sites(ws);
    let mut groups: BTreeMap<(String, String, String, String, String), Vec<u32>> = BTreeMap::new();
    for s in &found {
        groups.entry(s.key()).or_default().push(s.line);
    }
    let mut out = Vec::new();

    // Manifest self-checks: duplicates and empty/placeholder whys.
    let mut entry_by_key: BTreeMap<_, &Site> = BTreeMap::new();
    for site in manifest {
        let why = site.why.trim();
        if why.len() < 8 || why.starts_with("TODO") || why.starts_with("FIXME") {
            out.push(Violation {
                file: MANIFEST_PATH.to_string(),
                line: site.line,
                rule: RULE,
                message: format!(
                    "entry for {} `{}.{}({})` needs a real one-line justification \
                     in `why` (got `{why}`)",
                    site.func, site.atomic, site.op, site.order
                ),
            });
        }
        if entry_by_key.insert(site.key(), site).is_some() {
            out.push(Violation {
                file: MANIFEST_PATH.to_string(),
                line: site.line,
                rule: RULE,
                message: format!(
                    "duplicate manifest entry for {} `{}.{}({})`",
                    site.func, site.atomic, site.op, site.order
                ),
            });
        }
    }

    // Source → manifest: every group classified, with matching count.
    for (key, lines) in &groups {
        let first = found.iter().find(|s| &s.key() == key).expect("grouped");
        match entry_by_key.get(key) {
            None => out.push(Violation {
                file: first.file.clone(),
                line: lines[0],
                rule: RULE,
                message: format!(
                    "unclassified atomic site {} ({} site(s): line(s) {}); add a \
                     [[site]] entry to {MANIFEST_PATH} with a `why` justification \
                     (or regenerate a skeleton with `cargo run -p xtask -- analyze \
                     --emit-orderings`)",
                    first.describe(),
                    lines.len(),
                    fmt_lines(lines),
                ),
            }),
            Some(entry) if entry.count != lines.len() => out.push(Violation {
                file: first.file.clone(),
                line: lines[0],
                rule: RULE,
                message: format!(
                    "manifest count {} does not match the {} site(s) found for {} \
                     (line(s) {}); update `count` in {MANIFEST_PATH}:{}",
                    entry.count,
                    lines.len(),
                    first.describe(),
                    fmt_lines(lines),
                    entry.line,
                ),
            }),
            Some(_) => {}
        }
    }

    // Manifest → source: no stale entries.
    for site in manifest {
        if !groups.contains_key(&site.key()) {
            out.push(Violation {
                file: MANIFEST_PATH.to_string(),
                line: site.line,
                rule: RULE,
                message: format!(
                    "stale entry: no atomic site {} `{}.{}({})` found in {}",
                    site.func, site.atomic, site.op, site.order, site.file
                ),
            });
        }
    }
    out
}

fn fmt_lines(lines: &[u32]) -> String {
    lines
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Render a manifest skeleton covering every found site, grouped, with
/// empty `why` fields to fill in. Used by `analyze --emit-orderings`.
pub fn emit_skeleton(ws: &Workspace) -> String {
    let found = find_sites(ws);
    let mut groups: BTreeMap<(String, String, String, String, String), Vec<u32>> = BTreeMap::new();
    for s in &found {
        groups.entry(s.key()).or_default().push(s.line);
    }
    let mut out = String::new();
    for ((file, func, atomic, op, order), lines) in &groups {
        out.push_str(&format!(
            "# line(s) {}\n[[site]]\nfile = \"{file}\"\nfn = \"{func}\"\natomic = \
             \"{atomic}\"\nop = \"{op}\"\norder = \"{order}\"\n",
            fmt_lines(lines)
        ));
        if lines.len() > 1 {
            out.push_str(&format!("count = {}\n", lines.len()));
        }
        out.push_str("why = \"\"\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest;

    const POOLISH: &str = r#"
use crate::dcst_sync::{AtomicUsize, Ordering, fence};
struct Pool { outstanding: AtomicUsize }
impl Pool {
    fn wait(&self) {
        while self.outstanding.load(Ordering::Acquire) != 0 {}
        fence(Ordering::SeqCst);
    }
    fn bump(&self) {
        self.outstanding.fetch_add(1, Ordering::AcqRel);
        self.outstanding.fetch_add(1, Ordering::AcqRel);
    }
}
#[cfg(test)]
mod tests {
    fn t() { X.load(Ordering::SeqCst); }
}
"#;

    fn ws() -> Workspace {
        Workspace::from_sources(&[("crates/runtime/src/pool.rs", POOLISH)])
    }

    #[test]
    fn finds_and_groups_sites_excluding_tests() {
        let sites = find_sites(&ws());
        let mut keys: Vec<String> = sites
            .iter()
            .map(|s| format!("{}:{}.{}({})", s.func, s.atomic, s.op, s.order))
            .collect();
        keys.sort();
        assert_eq!(
            keys,
            vec![
                "Pool::bump:outstanding.fetch_add(AcqRel)",
                "Pool::bump:outstanding.fetch_add(AcqRel)",
                "Pool::wait:-.fence(SeqCst)",
                "Pool::wait:outstanding.load(Acquire)",
            ]
        );
    }

    #[test]
    fn mutation_unclassified_site_is_reported_with_file_and_line() {
        // Seeded violation: a manifest that misses the fetch_add group.
        let m = manifest::parse(
            r#"
[[site]]
file = "crates/runtime/src/pool.rs"
fn = "Pool::wait"
atomic = "outstanding"
op = "load"
order = "Acquire"
why = "pairs with the AcqRel decrement in bump"
[[site]]
file = "crates/runtime/src/pool.rs"
fn = "Pool::wait"
atomic = "-"
op = "fence"
order = "SeqCst"
why = "orders the empty-check against remote steals"
"#,
        )
        .unwrap();
        let vs = check(&ws(), &m);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, "orderings");
        assert_eq!(vs[0].file, "crates/runtime/src/pool.rs");
        assert_eq!(vs[0].line, 10);
        assert!(vs[0].message.contains("unclassified"), "{}", vs[0].message);
    }

    #[test]
    fn count_mismatch_stale_entry_and_empty_why_are_reported() {
        let m = manifest::parse(
            r#"
[[site]]
file = "crates/runtime/src/pool.rs"
fn = "Pool::wait"
atomic = "outstanding"
op = "load"
order = "Acquire"
why = "pairs with the AcqRel decrement in bump"
[[site]]
file = "crates/runtime/src/pool.rs"
fn = "Pool::wait"
atomic = "-"
op = "fence"
order = "SeqCst"
why = "TODO"
[[site]]
file = "crates/runtime/src/pool.rs"
fn = "Pool::bump"
atomic = "outstanding"
op = "fetch_add"
order = "AcqRel"
count = 1
why = "publishes the increment before the task becomes stealable"
[[site]]
file = "crates/runtime/src/pool.rs"
fn = "Pool::gone"
atomic = "x"
op = "store"
order = "Release"
why = "this site no longer exists in the source"
"#,
        )
        .unwrap();
        let vs = check(&ws(), &m);
        let rules: Vec<&str> = vs.iter().map(|v| v.rule).collect();
        assert!(rules.iter().all(|r| *r == "orderings"));
        assert_eq!(vs.len(), 3, "{vs:?}");
        assert!(vs.iter().any(|v| v.message.contains("justification")));
        assert!(vs
            .iter()
            .any(|v| v.message.contains("count 1 does not match the 2")));
        assert!(vs.iter().any(|v| v.message.contains("stale entry")));
    }

    #[test]
    fn skeleton_round_trips_through_the_manifest_parser() {
        let skel = emit_skeleton(&ws()).replace("why = \"\"", "why = \"filled in later on\"");
        let sites = manifest::parse(&skel).unwrap();
        assert_eq!(sites.len(), 3);
        assert!(check(&ws(), &sites).is_empty());
    }

    #[test]
    fn suppressed_sites_are_skipped() {
        let src = "\
fn f(x: &std::sync::atomic::AtomicU32) {
    // xtask-lint: allow(orderings) — exercised only by the bench harness
    x.store(1, Ordering::Relaxed);
}
";
        let ws = Workspace::from_sources(&[("crates/runtime/src/extra.rs", src)]);
        assert!(find_sites(&ws).is_empty());
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let src = "fn f(x: &A) { x.store(1, Ordering::Relaxed); }";
        let ws = Workspace::from_sources(&[
            ("crates/matrix/src/pool.rs", src),
            ("vendor/crossbeam-deque/tests/steal.rs", src),
        ]);
        assert!(find_sites(&ws).is_empty());
    }
}
