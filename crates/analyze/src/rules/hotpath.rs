//! Hot-path purity: a fn carrying a `// dcst-hot` marker (GEMM
//! micro-kernels, secular SIMD sweeps, deque `push`/`pop`/`steal`) must be
//! transitively free of `unwrap` / `expect` / `panic!` / `vec!` /
//! `Box::new` / `format!` within its crate's call graph — no allocation,
//! formatting, or panic machinery on the paths the paper's speedup rests
//! on.
//!
//! The call graph is name-level and crate-local: `f(…)` edges to free fns
//! named `f`, `Q::f(…)` prefers methods owned by `Q` then free fns, and
//! `.f(…)` edges to every method named `f` in the crate — deliberately
//! over-approximate (a lint must not miss paths), with `xtask-lint:
//! allow(hot-path)` as the escape hatch. Unlike the other rules, a
//! suppression here must carry a justification after the marker, e.g.
//! `// xtask-lint: allow(hot-path) — init-once cold path`.

use super::{allow_justification, Violation};
use crate::lexer::TokKind;
use crate::workspace::Workspace;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

pub const RULE: &str = "hot-path";

const BANNED_MACROS: &[&str] = &["panic", "vec", "format", "todo", "unimplemented"];
const BANNED_METHODS: &[&str] = &["unwrap", "expect"];
const KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "move", "in", "as", "fn", "let", "else",
];

/// (file index, fn index) — one node of a crate's call graph.
type FnRef = (usize, usize);

pub fn check(ws: &Workspace) -> Vec<Violation> {
    let mut crates: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (fi, f) in ws.files.iter().enumerate() {
        if f.is_test_file() {
            continue;
        }
        crates.entry(crate_of(&f.rel)).or_default().push(fi);
    }
    let mut out = Vec::new();
    for files in crates.values() {
        check_crate(ws, files, &mut out);
    }
    out
}

/// Crate grouping key: `crates/<name>` / `vendor/<name>`, else the first
/// path segment (`xtask`).
fn crate_of(rel: &str) -> String {
    let mut segs = rel.split('/');
    match (segs.next(), segs.next()) {
        (Some(a @ ("crates" | "vendor")), Some(b)) => format!("{a}/{b}"),
        (Some(a), _) => a.to_string(),
        _ => rel.to_string(),
    }
}

struct CrateIndex {
    /// All non-test fns: (file idx, fn idx) → qualified name.
    qualified: HashMap<FnRef, String>,
    free_by_name: HashMap<String, Vec<FnRef>>,
    methods_by_name: HashMap<String, Vec<FnRef>>,
    owned: HashMap<(String, String), Vec<FnRef>>,
}

fn index_crate(ws: &Workspace, files: &[usize]) -> CrateIndex {
    let mut ix = CrateIndex {
        qualified: HashMap::new(),
        free_by_name: HashMap::new(),
        methods_by_name: HashMap::new(),
        owned: HashMap::new(),
    };
    for &fi in files {
        let pf = &ws.files[fi].parsed;
        for (fj, f) in pf.fns.iter().enumerate() {
            if pf.fn_in_test(f) || f.body.is_none() {
                continue;
            }
            let r = (fi, fj);
            match &f.owner {
                None => {
                    ix.qualified.insert(r, f.name.clone());
                    ix.free_by_name.entry(f.name.clone()).or_default().push(r);
                }
                Some(o) => {
                    ix.qualified.insert(r, format!("{o}::{}", f.name));
                    ix.methods_by_name
                        .entry(f.name.clone())
                        .or_default()
                        .push(r);
                    ix.owned
                        .entry((o.clone(), f.name.clone()))
                        .or_default()
                        .push(r);
                }
            }
        }
    }
    ix
}

fn check_crate(ws: &Workspace, files: &[usize], out: &mut Vec<Violation>) {
    let ix = index_crate(ws, files);
    let roots: Vec<FnRef> = ix
        .qualified
        .keys()
        .copied()
        .filter(|&(fi, fj)| ws.files[fi].parsed.fns[fj].hot)
        .collect();
    if roots.is_empty() {
        return;
    }

    // BFS over the name-level call graph, remembering one parent per node
    // so findings can print the chain back to the hot root.
    let mut parent: HashMap<FnRef, FnRef> = HashMap::new();
    let mut seen: HashSet<FnRef> = roots.iter().copied().collect();
    let mut queue: VecDeque<FnRef> = roots.iter().copied().collect();
    while let Some(r) = queue.pop_front() {
        for callee in callees(ws, &ix, r) {
            if seen.insert(callee) {
                parent.insert(callee, r);
                queue.push_back(callee);
            }
        }
    }

    let mut ordered: Vec<FnRef> = seen.into_iter().collect();
    ordered.sort();
    for r in ordered {
        scan_banned(ws, &ix, r, &parent, out);
    }
}

/// Call edges out of one fn's body.
fn callees(ws: &Workspace, ix: &CrateIndex, (fi, fj): FnRef) -> Vec<FnRef> {
    let pf = &ws.files[fi].parsed;
    let Some((open, close)) = pf.fns[fj].body else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for i in open + 1..close {
        if pf.kind(i) != TokKind::Ident || i + 1 >= pf.sig.len() || pf.text(i + 1) != "(" {
            continue;
        }
        let name = pf.text(i);
        let prev = if i > 0 { pf.text(i - 1) } else { "" };
        if prev == "." {
            // Method call: every method with that name in the crate.
            if let Some(ms) = ix.methods_by_name.get(name) {
                out.extend(ms.iter().copied());
            }
        } else if prev == ":" && i >= 3 && pf.text(i - 2) == ":" {
            // Qualified call `Q::name(…)`: prefer Q's methods, else free.
            let q = pf.text(i - 3);
            if let Some(ms) = ix.owned.get(&(q.to_string(), name.to_string())) {
                out.extend(ms.iter().copied());
            } else if let Some(fs) = ix.free_by_name.get(name) {
                out.extend(fs.iter().copied());
            }
        } else if prev != "fn" && !KEYWORDS.contains(&name) {
            // Bare call: free fns only (methods need a receiver).
            if let Some(fs) = ix.free_by_name.get(name) {
                out.extend(fs.iter().copied());
            }
        }
    }
    out
}

fn scan_banned(
    ws: &Workspace,
    ix: &CrateIndex,
    r: FnRef,
    parent: &HashMap<FnRef, FnRef>,
    out: &mut Vec<Violation>,
) {
    let (fi, fj) = r;
    let file = &ws.files[fi];
    let pf = &file.parsed;
    let Some((open, close)) = pf.fns[fj].body else {
        return;
    };
    let n = pf.sig.len();
    for i in open + 1..close {
        let pat: Option<String> = if pf.text(i) == "."
            && i + 2 < n
            && BANNED_METHODS.contains(&pf.text(i + 1))
            && pf.text(i + 2) == "("
        {
            Some(format!(".{}()", pf.text(i + 1)))
        } else if pf.kind(i) == TokKind::Ident
            && BANNED_MACROS.contains(&pf.text(i))
            && i + 1 < n
            && pf.text(i + 1) == "!"
        {
            Some(format!("{}!", pf.text(i)))
        } else if pf.text(i) == "Box"
            && i + 3 < n
            && pf.text(i + 1) == ":"
            && pf.text(i + 2) == ":"
            && pf.text(i + 3) == "new"
            && i + 4 < n
            && pf.text(i + 4) == "("
        {
            Some("Box::new".to_string())
        } else {
            None
        };
        let Some(pat) = pat else { continue };
        let line = pf.line(i);
        match allow_justification(&pf.raw_lines, RULE, line) {
            Some(just) if just.len() >= 8 => continue, // justified suppression
            Some(_) => out.push(Violation {
                file: file.rel.clone(),
                line,
                rule: RULE,
                message: format!(
                    "`{pat}` suppression needs a justification after the marker, e.g. \
                     `xtask-lint: allow(hot-path) — init-once cold path`"
                ),
            }),
            None => out.push(Violation {
                file: file.rel.clone(),
                line,
                rule: RULE,
                message: format!(
                    "`{pat}` on a hot path: {} (hot paths must stay panic- and \
                     allocation-free; restructure, or suppress with a justified \
                     `xtask-lint: allow(hot-path)`)",
                    chain_to_root(ws, ix, r, parent),
                ),
            }),
        }
    }
}

/// `reachable from dcst-hot `root` via a → b → c`, or `marked dcst-hot`
/// when the finding is in the root itself.
fn chain_to_root(
    ws: &Workspace,
    ix: &CrateIndex,
    r: FnRef,
    parent: &HashMap<FnRef, FnRef>,
) -> String {
    let name = |r: &FnRef| {
        ix.qualified
            .get(r)
            .cloned()
            .unwrap_or_else(|| format!("{}:{}", ws.files[r.0].rel, r.1))
    };
    let mut chain = vec![name(&r)];
    let mut cur = r;
    while let Some(&p) = parent.get(&cur) {
        chain.push(name(&p));
        cur = p;
    }
    chain.reverse();
    if chain.len() == 1 {
        format!("`{}` is marked dcst-hot", chain[0])
    } else {
        format!(
            "reachable from dcst-hot `{}` via {}",
            chain[0],
            chain
                .iter()
                .map(|c| format!("`{c}`"))
                .collect::<Vec<_>>()
                .join(" → ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_direct_violation_in_hot_fn() {
        // Seeded violation: an unwrap inside a dcst-hot fn must be caught
        // with file, line, and rule name.
        let src = "\
// dcst-hot
pub fn kernel(x: Option<u32>) -> u32 {
    x.unwrap()
}
";
        let ws = Workspace::from_sources(&[("crates/matrix/src/kernel.rs", src)]);
        let vs = check(&ws);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, "hot-path");
        assert_eq!(vs[0].file, "crates/matrix/src/kernel.rs");
        assert_eq!(vs[0].line, 3);
        assert!(vs[0].message.contains("marked dcst-hot"));
    }

    #[test]
    fn mutation_transitive_violation_reports_the_chain() {
        let src = "\
// dcst-hot
pub fn push(&self) { self.grow(); }
struct W;
impl W {
    fn grow(&self) { alloc_buf(); }
}
fn alloc_buf() -> Box<u32> { Box::new(0) }
fn unrelated() { let v = vec![1]; }
";
        let ws = Workspace::from_sources(&[("vendor/crossbeam-deque/src/d.rs", src)]);
        let vs = check(&ws);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].line, 7);
        assert!(
            vs[0].message.contains("`push` → `W::grow` → `alloc_buf`"),
            "{}",
            vs[0].message
        );
    }

    #[test]
    fn all_banned_constructs_are_caught() {
        let src = "\
// dcst-hot
fn hot() {
    a.expect(\"x\");
    panic!(\"y\");
    let v = vec![0u8; 4];
    let s = format!(\"z\");
    let b = Box::new(1);
}
";
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", src)]);
        let pats: Vec<String> = check(&ws).iter().map(|v| v.line.to_string()).collect();
        assert_eq!(pats, vec!["3", "4", "5", "6", "7"]);
    }

    #[test]
    fn suppression_requires_justification() {
        let bare = "\
// dcst-hot
fn hot() {
    // xtask-lint: allow(hot-path)
    a.expect(\"x\");
}
";
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", bare)]);
        let vs = check(&ws);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("needs a justification"));

        let justified = "\
// dcst-hot
fn hot() {
    // xtask-lint: allow(hot-path) — init-once cold path, never per-element
    a.expect(\"x\");
}
";
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", justified)]);
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap_and_cold_fns_are_free() {
        let src = "\
// dcst-hot
fn hot(m: &Mutex<u32>) { lock(m); }
fn lock(m: &Mutex<u32>) { m.lock().unwrap_or_else(|e| e.into_inner()); }
fn cold() { let v = vec![1, 2]; v.first().unwrap(); }
";
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", src)]);
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn test_code_is_outside_the_graph() {
        let src = "\
// dcst-hot
fn hot() { helper(); }
fn helper() {}
#[cfg(test)]
mod tests {
    fn helper() { panic!(\"test-only twin\") }
    #[test]
    fn t() { super::hot(); }
}
";
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", src)]);
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn graph_is_crate_local() {
        let hot = "// dcst-hot\nfn hot() { other_crate_fn(); }\n";
        let other = "fn other_crate_fn() { panic!(\"different crate\") }\n";
        let ws = Workspace::from_sources(&[
            ("crates/a/src/lib.rs", hot),
            ("crates/b/src/lib.rs", other),
        ]);
        assert!(check(&ws).is_empty());
    }
}
