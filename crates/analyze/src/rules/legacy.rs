//! The original `xtask lint` rules, now running on the lexer-backed
//! stripper (which fixed the raw-string / truncated-literal mishandling
//! of the regex-era state machine):
//!
//! * **unsafe-safety** — every `unsafe` block and `unsafe impl` must carry
//!   a `// SAFETY:` comment, trailing or in the window of lines above.
//!   `unsafe fn` declarations are exempt (the obligation sits at call
//!   sites; `clippy::missing_safety_doc` polices public ones).
//! * **static-mut** — `static mut` items are banned outright.
//! * **sleep-poll** — `sleep`-based polling is banned in `crates/runtime`
//!   (the scheduler must park on condvars, never poll).
//! * **pool-sync** — `crates/runtime/src/pool.rs` must obtain every sync
//!   primitive through `crate::dcst_sync` so loom-lite can swap them out.

use super::{allowed, Violation};
use crate::workspace::SourceFile;

pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let rel = file.rel.as_str();
    let raw = &file.parsed.raw_lines;
    let stripped = &file.parsed.stripped;
    debug_assert_eq!(raw.len(), stripped.len());
    let mut out = Vec::new();

    // --- unsafe-safety + static-mut (workspace-wide) ---
    for (i, code) in stripped.iter().enumerate() {
        let line = i as u32 + 1;
        for kind in unsafe_uses(code, stripped, i) {
            if kind == UnsafeKind::Fn {
                continue; // declarations carry a `# Safety` doc contract
            }
            if !has_safety_comment(raw, i) && !allowed(raw, "unsafe-safety", line) {
                out.push(Violation {
                    file: rel.to_string(),
                    line,
                    rule: "unsafe-safety",
                    message: format!(
                        "`unsafe {}` without a `// SAFETY:` comment (same line or \
                         within the few lines above)",
                        if kind == UnsafeKind::Impl {
                            "impl"
                        } else {
                            "block"
                        }
                    ),
                });
            }
        }
        if has_static_mut(code) && !allowed(raw, "static-mut", line) {
            out.push(Violation {
                file: rel.to_string(),
                line,
                rule: "static-mut",
                message: "`static mut` is banned (use atomics or a lock)".into(),
            });
        }
    }

    // --- sleep-poll (crates/runtime only) ---
    if rel.starts_with("crates/runtime/") {
        for (i, code) in stripped.iter().enumerate() {
            let line = i as u32 + 1;
            if has_word_call(code, "sleep") && !allowed(raw, "sleep-poll", line) {
                out.push(Violation {
                    file: rel.to_string(),
                    line,
                    rule: "sleep-poll",
                    message: "sleep-based polling is banned in the runtime; park on a \
                              condvar instead"
                        .into(),
                });
            }
        }
    }

    // --- pool-sync (the worker pool must route sync through dcst_sync) ---
    if rel == "crates/runtime/src/pool.rs" {
        const BANNED: &[&str] = &[
            "parking_lot::",
            "crossbeam_deque::",
            "std::sync::Mutex",
            "std::sync::Condvar",
            "std::sync::RwLock",
            "std::sync::atomic",
        ];
        for (i, code) in stripped.iter().enumerate() {
            let line = i as u32 + 1;
            for pat in BANNED {
                if code.contains(pat) && !allowed(raw, "pool-sync", line) {
                    out.push(Violation {
                        file: rel.to_string(),
                        line,
                        rule: "pool-sync",
                        message: format!(
                            "direct `{pat}` use in the pool; import it from \
                             `crate::dcst_sync` so the model checker can instrument it"
                        ),
                    });
                }
            }
        }
    }

    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnsafeKind {
    Block,
    Impl,
    Fn,
}

/// Classify each `unsafe` keyword on stripped line `i` by its following
/// token (which may sit on a later line).
fn unsafe_uses(code: &str, stripped: &[String], i: usize) -> Vec<UnsafeKind> {
    let mut found = Vec::new();
    let bytes = code.as_bytes();
    let mut pos = 0;
    while let Some(off) = code[pos..].find("unsafe") {
        let start = pos + off;
        let end = start + "unsafe".len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            let tail = next_token(&code[end..], stripped, i);
            found.push(match tail.as_deref() {
                Some("fn") => UnsafeKind::Fn,
                Some("impl") => UnsafeKind::Impl,
                _ => UnsafeKind::Block,
            });
        }
        pos = end;
    }
    found
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// First word-or-symbol token in `rest`, falling through to later stripped
/// lines when the current one ends.
fn next_token(rest: &str, stripped: &[String], i: usize) -> Option<String> {
    let mut sources: Vec<&str> = vec![rest];
    for line in stripped.iter().skip(i + 1).take(3) {
        sources.push(line);
    }
    for src in sources {
        let trimmed = src.trim_start();
        if trimmed.is_empty() {
            continue;
        }
        let word: String = trimmed
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if word.is_empty() {
            return Some(trimmed.chars().take(1).collect());
        }
        return Some(word);
    }
    None
}

fn has_static_mut(code: &str) -> bool {
    let mut pos = 0;
    while let Some(off) = code[pos..].find("static") {
        let start = pos + off;
        let end = start + "static".len();
        let bytes = code.as_bytes();
        let left_ok = start == 0 || (!is_ident_byte(bytes[start - 1]) && bytes[start - 1] != b'\'');
        let right_is_mut =
            code[end..].trim_start().starts_with("mut ") || code[end..].trim_start() == "mut";
        if left_ok && right_is_mut {
            return true;
        }
        pos = end;
    }
    false
}

fn has_word_call(code: &str, word: &str) -> bool {
    let mut pos = 0;
    while let Some(off) = code[pos..].find(word) {
        let start = pos + off;
        let end = start + word.len();
        let bytes = code.as_bytes();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_is_call = code[end..].trim_start().starts_with('(');
        if left_ok && right_is_call {
            return true;
        }
        pos = end;
    }
    false
}

/// True when line `i` (0-based, raw text) carries a `SAFETY:` marker on
/// the same line or within the window of lines directly above it. The
/// window (rather than strict contiguity) lets one comment cover several
/// adjacent `unsafe` borrows it jointly justifies.
fn has_safety_comment(raw: &[String], i: usize) -> bool {
    const WINDOW: usize = 8;
    let lo = i.saturating_sub(WINDOW);
    raw[lo..=i].iter().any(|l| l.contains("SAFETY:"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, src: &str) -> Vec<String> {
        check_file(&SourceFile::from_source(rel, src))
            .into_iter()
            .map(|v| format!("{}:{}", v.rule, v.line))
            .collect()
    }

    #[test]
    fn unsafe_block_requires_safety_comment() {
        let bad = "fn f() {\n    let x = unsafe { g() };\n}\n";
        assert_eq!(lint("a.rs", bad), vec!["unsafe-safety:2"]);
        let good = "fn f() {\n    // SAFETY: g is fine here.\n    let x = unsafe { g() };\n}\n";
        assert!(lint("a.rs", good).is_empty());
        let trailing = "fn f() {\n    let x = unsafe { g() }; // SAFETY: fine.\n}\n";
        assert!(lint("a.rs", trailing).is_empty());
    }

    #[test]
    fn unsafe_impl_requires_comment_but_unsafe_fn_is_exempt() {
        assert_eq!(
            lint("a.rs", "unsafe impl Send for X {}\n"),
            vec!["unsafe-safety:1"]
        );
        assert!(lint(
            "a.rs",
            "// SAFETY: no interior refs.\nunsafe impl Send for X {}\n"
        )
        .is_empty());
        assert!(lint("a.rs", "pub unsafe fn f() {}\n").is_empty());
        assert!(lint("a.rs", "type F = unsafe fn(usize);\n").is_empty());
    }

    #[test]
    fn unsafe_in_comments_and_strings_is_ignored() {
        let src = "// this unsafe { } is prose\nlet s = \"unsafe { }\";\n";
        assert!(lint("a.rs", src).is_empty());
    }

    #[test]
    fn unsafe_in_raw_strings_and_char_quotes_is_ignored() {
        // Regression (satellite bugfix): raw strings and quote-bearing
        // char literals must not desynchronize the stripper.
        let src = "let a = r#\"unsafe { }\"#;\nlet b = '\"';\nlet c = unsafe { g() };\n";
        assert_eq!(lint("a.rs", src), vec!["unsafe-safety:3"]);
        let src2 = "let a = r##\"static mut\"##;\nlet b = br#\"unsafe\"#;\n";
        assert!(lint("a.rs", src2).is_empty());
    }

    #[test]
    fn truncated_literal_does_not_shift_line_numbers() {
        // Regression: the old stripper swallowed the newline of an
        // unterminated `'\` escape, shifting every later violation line.
        let src = "let a = '\\\nfn f() { let x = unsafe { g() }; }\n";
        assert_eq!(lint("a.rs", src), vec!["unsafe-safety:2"]);
    }

    #[test]
    fn static_mut_is_flagged_but_static_lifetime_is_not() {
        assert_eq!(
            lint("a.rs", "static mut X: u32 = 0;\n"),
            vec!["static-mut:1"]
        );
        assert!(lint("a.rs", "fn f(x: &'static mut u32) {}\n").is_empty());
        assert!(lint("a.rs", "static X: u32 = 0;\n").is_empty());
    }

    #[test]
    fn sleep_is_scoped_to_runtime() {
        let src = "fn f() { std::thread::sleep(d); }\n";
        assert_eq!(
            lint("crates/runtime/src/pool.rs", src),
            vec!["sleep-poll:1"]
        );
        assert!(lint("crates/matrix/src/pool.rs", src).is_empty());
    }

    #[test]
    fn pool_sync_primitives_must_come_from_dcst_sync() {
        let src = "use parking_lot::Mutex;\nuse std::sync::Arc;\n";
        assert_eq!(lint("crates/runtime/src/pool.rs", src), vec!["pool-sync:1"]);
        assert!(lint("crates/runtime/src/share.rs", src).is_empty());
    }

    #[test]
    fn allow_marker_waives_a_violation() {
        let src = "// xtask-lint: allow(static-mut) — FFI shim\nstatic mut X: u32 = 0;\n";
        assert!(lint("a.rs", src).is_empty());
    }

    #[test]
    fn multiline_unsafe_classification() {
        // `unsafe` at end of line, `impl` on the next one.
        let src = "unsafe\nimpl Send for X {}\n";
        assert_eq!(lint("a.rs", src), vec!["unsafe-safety:1"]);
    }
}
