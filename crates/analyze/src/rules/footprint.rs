//! Static task-footprint lint: inside a taskflow spawn body, every
//! `range_mut` / `slice_mut` access (the unsafe mutable views handed out
//! by `runtime::share`) must be covered by a write-class access
//! declaration — `.write(key)`, `.read_write(key)`, or `.gatherv(node)` —
//! somewhere in the same builder chain:
//!
//! ```text
//! rt.task("STEDC").read(a).write(key_node(l)).spawn_try(move || {
//!     let db = unsafe { d.range_mut(off..off + nm) };   // covered
//!     …
//! })
//! ```
//!
//! A spawn whose body takes a mutable view while its chain declares only
//! reads is exactly the data-race shape the access-mode checker catches at
//! runtime — this rule catches it at lint time, before a scheduler run.
//!
//! The chain is recovered syntactically: from `.spawn(` / `.spawn_try(`
//! the receiver is walked backwards through `.method(…)` links to a head,
//! which is either a direct `rt.task(…)` chain, a builder-helper call
//! (a crate-local fn whose own body contains `.task(` — e.g.
//! `panel_task`, which declares `gatherv`/`read_write` internally), or a
//! local variable (resolved by scanning earlier statements of the
//! enclosing fn for its construction and reassignments). Non-taskflow
//! spawns (`thread::Builder::spawn`) never look like a `task` chain and
//! are ignored.

use super::{allowed, Violation};
use crate::lexer::TokKind;
use crate::parser::ParsedFile;
use crate::workspace::Workspace;
use std::collections::{HashMap, HashSet};

pub const RULE: &str = "footprint";

const WRITE_CLASS: &[&str] = &["write", "read_write", "gatherv"];
const MUT_ACCESS: &[&str] = &["range_mut", "slice_mut"];

pub fn check(ws: &Workspace) -> Vec<Violation> {
    // Crate-local builder helpers: free fns whose body routes through
    // `.task(`; remember whether the helper itself declares a write-class
    // access (panel_task declares gatherv/read_write).
    let mut helpers: HashMap<String, HashMap<&str, bool>> = HashMap::new();
    for file in &ws.files {
        if file.is_test_file() {
            continue;
        }
        let pf = &file.parsed;
        let ck = crate_key(&file.rel);
        for f in &pf.fns {
            if f.owner.is_some() || pf.fn_in_test(f) {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            if contains_method_call(pf, open, close, &["task"]) {
                helpers
                    .entry(ck.clone())
                    .or_default()
                    .insert(&f.name, contains_method_call(pf, open, close, WRITE_CLASS));
            }
        }
    }

    let mut out = Vec::new();
    for file in &ws.files {
        if !file.is_test_file() && file.rel.starts_with("crates/") {
            let empty = HashMap::new();
            let local = helpers.get(&crate_key(&file.rel)).unwrap_or(&empty);
            check_file(file.rel.as_str(), &file.parsed, local, &mut out);
        }
    }
    out
}

fn crate_key(rel: &str) -> String {
    rel.split('/').take(2).collect::<Vec<_>>().join("/")
}

/// Any `.name(` with `name` in `names` inside sig range `(open, close)`.
fn contains_method_call(pf: &ParsedFile, open: usize, close: usize, names: &[&str]) -> bool {
    (open + 1..close.saturating_sub(1)).any(|i| {
        pf.text(i) == "."
            && names.contains(&pf.text(i + 1))
            && i + 2 < close
            && pf.text(i + 2) == "("
    })
}

fn check_file(rel: &str, pf: &ParsedFile, helpers: &HashMap<&str, bool>, out: &mut Vec<Violation>) {
    // close → open, for walking receiver chains backwards.
    let rev: HashMap<usize, usize> = pf.brackets.iter().map(|(&o, &c)| (c, o)).collect();
    let n = pf.sig.len();
    for i in 0..n {
        if pf.text(i) != "."
            || i + 2 >= n
            || !matches!(pf.text(i + 1), "spawn" | "spawn_try")
            || pf.text(i + 2) != "("
        {
            continue;
        }
        if pf.enclosing_fn(i).is_some_and(|f| pf.fn_in_test(f)) {
            continue;
        }
        let chain = walk_chain(pf, &rev, i);
        let is_task_chain = chain.methods.iter().any(|m| m == "task")
            || chain
                .head_calls
                .iter()
                .any(|h| helpers.contains_key(h.as_str()));
        if !is_task_chain {
            continue;
        }
        let writes_declared = chain
            .methods
            .iter()
            .any(|m| WRITE_CLASS.contains(&m.as_str()))
            || chain
                .head_calls
                .iter()
                .any(|h| helpers.get(h.as_str()).copied().unwrap_or(false));
        if writes_declared {
            continue;
        }
        // Scan the spawn arguments for mutable share-views.
        let close = pf.brackets.get(&(i + 2)).copied().unwrap_or(n - 1);
        for j in i + 3..close {
            if pf.text(j) == "."
                && j + 2 < close
                && MUT_ACCESS.contains(&pf.text(j + 1))
                && pf.text(j + 2) == "("
            {
                let line = pf.line(j + 1);
                if !allowed(&pf.raw_lines, RULE, line) {
                    out.push(Violation {
                        file: rel.to_string(),
                        line,
                        rule: RULE,
                        message: format!(
                            "spawn body takes a mutable view via `.{}(…)` but its task \
                             chain declares no write-class access — add `.write(key)`, \
                             `.read_write(key)`, or `.gatherv(node)` to the builder chain",
                            pf.text(j + 1)
                        ),
                    });
                }
            }
        }
    }
}

struct Chain {
    /// Method names linked with `.` between the head and `spawn`.
    methods: Vec<String>,
    /// Call heads that could have built the receiver: the direct head
    /// call (`panel_task(…).spawn(…)`) or, for a variable head, the RHS
    /// heads of its construction/reassignments.
    head_calls: Vec<String>,
}

/// Walk backwards from the `.` of `.spawn(` through `.method(…)` links.
fn walk_chain(pf: &ParsedFile, rev: &HashMap<usize, usize>, dot: usize) -> Chain {
    let mut chain = Chain {
        methods: Vec::new(),
        head_calls: Vec::new(),
    };
    let mut cur = dot; // always at a `.` whose receiver ends at cur-1
    loop {
        if cur == 0 {
            return chain;
        }
        if pf.text(cur - 1) == ")" {
            let Some(&open) = rev.get(&(cur - 1)) else {
                return chain;
            };
            if open >= 1 && pf.kind(open - 1) == TokKind::Ident {
                let name = pf.text(open - 1).to_string();
                if open >= 2 && pf.text(open - 2) == "." {
                    chain.methods.push(name);
                    cur = open - 2;
                    continue;
                }
                // Head is a direct call; qualified paths (`thread::spawn`)
                // keep the bare fn-name — helper lookup won't match them.
                chain.head_calls.push(name);
            }
            return chain;
        }
        if pf.kind(cur - 1) == TokKind::Ident {
            // Variable head: resolve its construction within the
            // enclosing fn, before this use.
            resolve_var(pf, pf.text(cur - 1), cur - 1, &mut chain);
            return chain;
        }
        return chain;
    }
}

/// Scan the enclosing fn's body before `use_pos` for `var.method(…)`
/// uses and `var = <rhs>` (re)assignments, accumulating chain methods
/// and RHS head-call names.
fn resolve_var(pf: &ParsedFile, var: &str, use_pos: usize, chain: &mut Chain) {
    let Some((start, _)) = pf.enclosing_fn(use_pos).and_then(|f| f.body) else {
        return;
    };
    let mut seen_methods: HashSet<String> = HashSet::new();
    for i in start + 1..use_pos {
        if pf.text(i) != var || pf.kind(i) != TokKind::Ident {
            continue;
        }
        if i + 1 < use_pos && pf.text(i + 1) == "." {
            // `var.method(…)…` — collect the forward chain.
            let mut j = i + 1;
            while j + 2 < use_pos && pf.text(j) == "." && pf.kind(j + 1) == TokKind::Ident {
                if pf.text(j + 2) == "(" {
                    seen_methods.insert(pf.text(j + 1).to_string());
                    let close = pf.brackets.get(&(j + 2)).copied().unwrap_or(use_pos);
                    j = close + 1;
                } else {
                    break; // field access, stop
                }
            }
        } else if i + 1 < use_pos && pf.text(i + 1) == "=" && pf.text(i + 2) != "=" {
            // `var = <rhs>;` / `let … var = <rhs>;`
            let mut j = i + 2;
            while j < use_pos && pf.text(j) != ";" {
                match pf.text(j) {
                    "(" | "[" | "{" => {
                        if j >= 1 && pf.kind(j - 1) == TokKind::Ident {
                            let name = pf.text(j - 1).to_string();
                            if j >= 2 && pf.text(j - 2) == "." {
                                seen_methods.insert(name);
                            } else {
                                chain.head_calls.push(name);
                            }
                        }
                        j = pf.brackets.get(&j).copied().unwrap_or(use_pos);
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
    chain.methods.extend(seen_methods);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_mut_view_without_write_class_is_reported() {
        // Seeded violation: read-only chain, mutable view in the body.
        let src = "\
fn build(rt: &Rt, d: Share<f64>) {
    rt.task(\"Scale\")
        .read(key_input)
        .spawn(move || {
            let ds = unsafe { d.slice_mut() };
            ds[0] = 1.0;
        });
}
";
        let ws = Workspace::from_sources(&[("crates/dcst/src/plan.rs", src)]);
        let vs = check(&ws);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, "footprint");
        assert_eq!(vs[0].file, "crates/dcst/src/plan.rs");
        assert_eq!(vs[0].line, 5);
        assert!(vs[0].message.contains("slice_mut"), "{}", vs[0].message);
    }

    #[test]
    fn declared_write_passes() {
        let src = "\
fn build(rt: &Rt, d: Share<f64>) {
    rt.task(\"STEDC\")
        .read(a)
        .write(key_node(l))
        .spawn_try(move || {
            let db = unsafe { d.range_mut(off..off + nm) };
            Ok(())
        });
}
";
        let ws = Workspace::from_sources(&[("crates/dcst/src/plan.rs", src)]);
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn helper_with_internal_write_class_passes() {
        // panel_task declares gatherv/read_write in its own body.
        let src = "\
fn panel_task(rt: &Rt, name: &str) -> TaskBuilder {
    if wide { rt.task(name).gatherv(node) } else { rt.task(name).read_write(node) }
}
fn build(rt: &Rt, v: Share<f64>) {
    panel_task(rt, \"PermuteV\").spawn(move || {
        let ws = unsafe { v.range_mut(a..b) };
    });
}
";
        let ws = Workspace::from_sources(&[("crates/dcst/src/plan.rs", src)]);
        assert!(check(&ws).is_empty(), "{:?}", check(&ws));
    }

    #[test]
    fn variable_head_resolves_reassignments() {
        let good = "\
fn panel_task(rt: &Rt, name: &str) -> TaskBuilder { rt.task(name).read(node) }
fn build(rt: &Rt, v: Share<f64>) {
    let mut task = panel_task(rt, \"LAED4\");
    task = task.write(key_x(s0));
    task.spawn(move || {
        let xs = unsafe { v.range_mut(a..b) };
    });
}
";
        let ws = Workspace::from_sources(&[("crates/dcst/src/plan.rs", good)]);
        assert!(check(&ws).is_empty(), "{:?}", check(&ws));

        let bad = "\
fn build(rt: &Rt, v: Share<f64>) {
    let t = rt.task(\"X\").read(node);
    t.spawn(move || {
        let xs = unsafe { v.range_mut(a..b) };
    });
}
";
        let ws = Workspace::from_sources(&[("crates/dcst/src/plan.rs", bad)]);
        let vs = check(&ws);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].line, 4);
    }

    #[test]
    fn thread_spawns_are_not_task_chains() {
        let src = "\
fn start(d: Share<f64>) {
    std::thread::Builder::new()
        .name(\"worker\".into())
        .spawn(move || {
            let ds = unsafe { d.slice_mut() };
        })
        .unwrap();
}
";
        let ws = Workspace::from_sources(&[("crates/runtime/src/pool.rs", src)]);
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn allow_marker_waives() {
        let src = "\
fn build(rt: &Rt, d: Share<f64>) {
    rt.task(\"Gather\").read(a).spawn(move || {
        // xtask-lint: allow(footprint) — disjoint per-task slices, proven by partition
        let ds = unsafe { d.slice_mut() };
    });
}
";
        let ws = Workspace::from_sources(&[("crates/dcst/src/plan.rs", src)]);
        assert!(check(&ws).is_empty(), "{:?}", check(&ws));
    }
}
