//! Rule engine: the violation type, suppression markers, and the drivers
//! that run every pass over a parsed [`Workspace`].
//!
//! Suppressions follow the established lint convention: a violation on
//! line N is waived by `xtask-lint: allow(<rule>)` in a comment on line N
//! or N-1. The hot-path rule additionally demands a justification after
//! the marker (see [`hotpath`]).

pub mod featuresym;
pub mod footprint;
pub mod hotpath;
pub mod legacy;
pub mod orderings;

use crate::workspace::Workspace;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// `xtask-lint: allow(<rule>)` on raw line `line` (1-based) or the line
/// above waives a violation reported at `line`.
pub fn allowed(raw_lines: &[String], rule: &str, line: u32) -> bool {
    let marker = format!("xtask-lint: allow({rule})");
    let i = line as usize;
    let at = |n: usize| n >= 1 && raw_lines.get(n - 1).is_some_and(|l| l.contains(&marker));
    at(i) || at(i.saturating_sub(1))
}

/// Like [`allowed`], but returns the justification text following the
/// marker — `None` when no marker is present, `Some("")`-ish when the
/// marker carries no justification. Used by rules that require a reason.
pub fn allow_justification<'a>(raw_lines: &'a [String], rule: &str, line: u32) -> Option<&'a str> {
    let marker = format!("xtask-lint: allow({rule})");
    let i = line as usize;
    for n in [i, i.saturating_sub(1)] {
        if n >= 1 {
            if let Some(l) = raw_lines.get(n - 1) {
                if let Some(pos) = l.find(&marker) {
                    let rest = &l[pos + marker.len()..];
                    return Some(
                        rest.trim_start_matches([')', ':', '-', ' ', '\u{2014}', '\u{2013}'])
                            .trim(),
                    );
                }
            }
        }
    }
    None
}

/// The four legacy rules (unsafe-safety, static-mut, sleep-poll,
/// pool-sync) — the back-compatible `xtask lint` surface.
pub fn run_legacy(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in &ws.files {
        out.extend(legacy::check_file(file));
    }
    sort(&mut out);
    out
}

/// Everything: legacy rules plus the four analysis passes. `manifest`
/// carries the contents of `specs/orderings.toml`, or an explanation of
/// why it could not be read (which becomes a violation — an unreadable
/// manifest must fail the run, not weaken it).
pub fn run_full(ws: &Workspace, manifest: Result<&str, String>) -> Vec<Violation> {
    let mut out = run_legacy(ws);
    match manifest {
        Ok(text) => match crate::manifest::parse(text) {
            Ok(sites) => out.extend(orderings::check(ws, &sites)),
            Err(e) => out.push(Violation {
                file: orderings::MANIFEST_PATH.to_string(),
                line: 0,
                rule: orderings::RULE,
                message: format!("manifest parse error: {e}"),
            }),
        },
        Err(e) => out.push(Violation {
            file: orderings::MANIFEST_PATH.to_string(),
            line: 0,
            rule: orderings::RULE,
            message: format!("cannot read orderings manifest: {e}"),
        }),
    }
    out.extend(hotpath::check(ws));
    out.extend(featuresym::check(ws));
    out.extend(footprint::check(ws));
    sort(&mut out);
    out
}

fn sort(out: &mut [Violation]) {
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_justification_extracts_reason() {
        let lines: Vec<String> = vec![
            "// xtask-lint: allow(hot-path) — init-once cold path".into(),
            "let x = pool();".into(),
            "// xtask-lint: allow(hot-path)".into(),
            "let y = pool();".into(),
        ];
        assert_eq!(
            allow_justification(&lines, "hot-path", 2),
            Some("init-once cold path")
        );
        assert_eq!(allow_justification(&lines, "hot-path", 4), Some(""));
        assert_eq!(
            allow_justification(&lines, "hot-path", 1),
            Some("init-once cold path")
        );
        assert!(allow_justification(&lines, "orderings", 2).is_none());
    }
}
