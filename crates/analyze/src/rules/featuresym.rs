//! Feature-gate symmetry: the two-`mod imp` idiom (metrics, failpoints,
//! dcst_sync) compiles exactly one of two same-named modules depending on
//! a cfg predicate:
//!
//! ```text
//! #[cfg(feature = "metrics")]      mod imp { pub fn add(n: u64) { … } }
//! #[cfg(not(feature = "metrics"))] mod imp { pub fn add(_n: u64) {} }
//! ```
//!
//! The idiom only works if both variants expose the same `pub fn`
//! surface; a fn added to one side silently breaks the other feature
//! combination — usually discovered much later by a CI matrix job. This
//! rule pairs same-named sibling mods whose cfg predicates are mutual
//! complements (`P` / `not(P)`) and diffs their pub fn signatures
//! (patterns dropped, types kept, lifetimes normalized out of receivers).

use super::{allowed, Violation};
use crate::lexer::TokKind;
use crate::parser::{FnItem, ParsedFile};
use crate::workspace::{SourceFile, Workspace};
use std::collections::BTreeMap;

pub const RULE: &str = "feature-sym";

pub fn check(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !file.is_test_file() {
            check_file(file, &mut out);
        }
    }
    out
}

fn check_file(file: &SourceFile, out: &mut Vec<Violation>) {
    let pf = &file.parsed;
    // Group sibling mods by (parent, name); only cfg-carrying ones can
    // form an on/off pair.
    let mut groups: BTreeMap<(Option<usize>, &str), Vec<usize>> = BTreeMap::new();
    for (id, m) in pf.mods.iter().enumerate() {
        if !m.cfgs.is_empty() && !m.in_test {
            groups
                .entry((m.parent, m.name.as_str()))
                .or_default()
                .push(id);
        }
    }
    for ids in groups.values() {
        for (xi, &a) in ids.iter().enumerate() {
            for &b in &ids[xi + 1..] {
                if complementary(&pf.mods[a].cfgs, &pf.mods[b].cfgs) {
                    diff_pair(file, a, b, out);
                }
            }
        }
    }
}

/// `P` vs `not(P)` in either direction (predicates are
/// whitespace-normalized by the parser).
fn complementary(a: &[String], b: &[String]) -> bool {
    let negates = |p: &String, q: &String| q == &format!("not({p})");
    a.iter().any(|p| b.iter().any(|q| negates(p, q)))
        || b.iter().any(|p| a.iter().any(|q| negates(p, q)))
}

fn diff_pair(file: &SourceFile, a: usize, b: usize, out: &mut Vec<Violation>) {
    let pf = &file.parsed;
    let surface = |m: usize| -> BTreeMap<(String, String), (String, u32)> {
        let mut map = BTreeMap::new();
        for f in &pf.fns {
            if f.is_pub && !pf.fn_in_test(f) && in_mod(pf, f, m) {
                map.insert(
                    (f.owner.clone().unwrap_or_default(), f.name.clone()),
                    (norm_sig(pf, f), f.line),
                );
            }
        }
        map
    };
    let sa = surface(a);
    let sb = surface(b);
    let describe = |m: usize| {
        let md = &pf.mods[m];
        format!(
            "mod `{}` (line {}, cfg {})",
            md.name,
            md.line,
            md.cfgs.join(", ")
        )
    };
    for (dir_a, dir_b, sx, sy) in [(a, b, &sa, &sb), (b, a, &sb, &sa)] {
        for ((owner, name), (sig, line)) in sx {
            let qual = if owner.is_empty() {
                name.clone()
            } else {
                format!("{owner}::{name}")
            };
            match sy.get(&(owner.clone(), name.clone())) {
                None => {
                    if !allowed(&pf.raw_lines, RULE, *line) {
                        out.push(Violation {
                            file: file.rel.clone(),
                            line: *line,
                            rule: RULE,
                            message: format!(
                                "pub fn `{qual}` exists in {} but is missing from its \
                                 counterpart {} — the two variants must expose the same \
                                 surface",
                                describe(dir_a),
                                describe(dir_b),
                            ),
                        });
                    }
                }
                // Mismatches are reported once, from the first variant.
                Some((other_sig, other_line)) if other_sig != sig && dir_a == a => {
                    if !allowed(&pf.raw_lines, RULE, *line) {
                        out.push(Violation {
                            file: file.rel.clone(),
                            line: *line,
                            rule: RULE,
                            message: format!(
                                "pub fn `{qual}` differs between the cfg variants: \
                                 `{sig}` here vs `{other_sig}` at line {other_line}"
                            ),
                        });
                    }
                }
                Some(_) => {}
            }
        }
    }
}

/// Is fn `f` inside mod `m` (directly, or via nested mods / impl blocks)?
fn in_mod(pf: &ParsedFile, f: &FnItem, m: usize) -> bool {
    let mut cur = f.mod_id;
    while let Some(id) = cur {
        if id == m {
            return true;
        }
        cur = pf.mods[id].parent;
    }
    false
}

/// Normalized comparable signature: `(type, type, …) -> ret` with
/// parameter patterns dropped (`_n: u64` and `n: u64` compare equal),
/// receiver lifetimes erased (`&'a self` == `&self`), generics kept
/// verbatim.
fn norm_sig(pf: &ParsedFile, f: &FnItem) -> String {
    let (open, close) = f.params;
    let generics = norm_generics(pf, f.sig_range.0 + 2, open);
    let mut params: Vec<String> = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut angle = 0i32;
    let mut i = open + 1;
    while i < close {
        match pf.text(i) {
            "<" => {
                angle += 1;
                cur.push(i);
            }
            ">" if i > 0 && pf.text(i - 1) != "-" => {
                angle -= 1;
                cur.push(i);
            }
            "(" | "[" | "{" => {
                let c = pf.brackets.get(&i).copied().unwrap_or(close).min(close);
                cur.extend(i..=c.min(close - 1));
                i = c;
            }
            "," if angle == 0 => {
                params.push(norm_param(pf, &cur));
                cur.clear();
            }
            _ => cur.push(i),
        }
        i += 1;
    }
    if !cur.is_empty() {
        params.push(norm_param(pf, &cur));
    }
    let mut ret_toks = Vec::new();
    for i in close + 1..f.sig_range.1 {
        if pf.text(i) == "where" {
            break;
        }
        ret_toks.push(i);
    }
    let ret = join_type(pf, &ret_toks);
    let mut s = String::new();
    if !generics.is_empty() {
        s.push_str(&generics);
        s.push(' ');
    }
    s.push_str(&format!("({})", params.join(", ")));
    if !ret.is_empty() {
        s.push(' ');
        s.push_str(&ret);
    }
    s
}

/// One parameter: receivers normalize to `self`/`&self`/`&mut self`;
/// everything else reduces to its type (text after the top-level `:`).
fn norm_param(pf: &ParsedFile, toks: &[usize]) -> String {
    let is_self = toks.iter().any(|&i| pf.text(i) == "self")
        && !toks
            .windows(2)
            .any(|w| pf.text(w[0]) == ":" && pf.text(w[1]) != ":");
    if is_self {
        let mut s = String::new();
        for &i in toks {
            match pf.text(i) {
                "&" => s.push('&'),
                "mut" if s.starts_with('&') => s.push_str("mut "),
                "self" => s.push_str("self"),
                _ => {} // lifetimes, leading `mut` on by-value self
            }
        }
        return s;
    }
    // Type position: after the first top-level `:` that is not part of a
    // `::` path separator.
    let mut split = None;
    let mut k = 0;
    while k < toks.len() {
        if pf.text(toks[k]) == ":" {
            if k + 1 < toks.len() && pf.text(toks[k + 1]) == ":" {
                k += 2;
                continue;
            }
            split = Some(k + 1);
            break;
        }
        k += 1;
    }
    join_type(pf, &toks[split.unwrap_or(0)..])
}

/// Join type tokens, erasing reference lifetimes (`&'a T` == `&T`).
fn join_type(pf: &ParsedFile, toks: &[usize]) -> String {
    let mut s = String::new();
    for &i in toks {
        if pf.kind(i) == TokKind::Lifetime && s.ends_with('&') {
            continue;
        }
        if !s.is_empty() && !s.ends_with('&') {
            s.push(' ');
        }
        s.push_str(pf.text(i));
    }
    s
}

/// Generic parameter list `[a, b)` (including the `<`/`>` delimiters)
/// with lifetime parameters dropped: `<'a>` compares equal to nothing,
/// `<'a, T>` to `<T>`.
fn norm_generics(pf: &ParsedFile, a: usize, b: usize) -> String {
    if a >= b {
        return String::new();
    }
    let mut segments: Vec<Vec<usize>> = vec![Vec::new()];
    let mut angle = 0i32;
    let mut i = a;
    while i < b {
        match pf.text(i) {
            "<" if angle == 0 => angle = 1, // outer delimiter
            ">" if angle == 1 && pf.text(i.saturating_sub(1)) != "-" => angle = 0,
            "<" => {
                angle += 1;
                segments.last_mut().expect("nonempty").push(i);
            }
            ">" if pf.text(i.saturating_sub(1)) != "-" => {
                angle -= 1;
                segments.last_mut().expect("nonempty").push(i);
            }
            "," if angle == 1 => segments.push(Vec::new()),
            _ => segments.last_mut().expect("nonempty").push(i),
        }
        i += 1;
    }
    let kept: Vec<String> = segments
        .iter()
        .filter(|seg| {
            !seg.first()
                .is_some_and(|&t| pf.kind(t) == TokKind::Lifetime)
        })
        .filter(|seg| !seg.is_empty())
        .map(|seg| join_type(pf, seg))
        .collect();
    if kept.is_empty() {
        String::new()
    } else {
        format!("<{}>", kept.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_missing_fn_is_reported_with_file_and_line() {
        // Seeded violation: the off-variant lacks `flush`.
        let src = "\
#[cfg(feature = \"metrics\")]
mod imp {
    pub fn add(n: u64) {}
    pub fn flush() {}
}
#[cfg(not(feature = \"metrics\"))]
mod imp {
    pub fn add(_n: u64) {}
}
";
        let ws = Workspace::from_sources(&[("crates/matrix/src/metrics.rs", src)]);
        let vs = check(&ws);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, "feature-sym");
        assert_eq!(vs[0].file, "crates/matrix/src/metrics.rs");
        assert_eq!(vs[0].line, 4);
        assert!(vs[0].message.contains("`flush`"), "{}", vs[0].message);
    }

    #[test]
    fn mutation_signature_mismatch_reports_both_lines() {
        let src = "\
#[cfg(feature = \"metrics\")]
mod imp {
    pub fn add(n: u64) -> u64 { n }
}
#[cfg(not(feature = \"metrics\"))]
mod imp {
    pub fn add(_n: u64) {}
}
";
        let ws = Workspace::from_sources(&[("crates/x/src/m.rs", src)]);
        let vs = check(&ws);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].line, 3);
        assert!(vs[0].message.contains("differs"), "{}", vs[0].message);
        assert!(vs[0].message.contains("line 7"), "{}", vs[0].message);
    }

    #[test]
    fn symmetric_variants_pass_despite_pattern_and_lifetime_noise() {
        let src = "\
struct M;
#[cfg(feature = \"metrics\")]
mod imp {
    pub struct H;
    impl H {
        pub fn record(&mut self, worker: usize, n: u64) {}
    }
    pub fn fmt<'a>(buf: &'a mut String) -> &'a str { buf }
}
#[cfg(not(feature = \"metrics\"))]
mod imp {
    pub struct H;
    impl H {
        pub fn record(&mut self, _worker: usize, _n: u64) {}
    }
    pub fn fmt(_buf: &mut String) -> &str { \"\" }
}
";
        let ws = Workspace::from_sources(&[("crates/x/src/m.rs", src)]);
        assert!(check(&ws).is_empty(), "{:?}", check(&ws));
    }

    #[test]
    fn model_check_cfg_pairs_too() {
        let src = "\
#[cfg(dcst_model_check)]
mod imp {
    pub fn park() {}
}
#[cfg(not(dcst_model_check))]
mod imp {
    pub fn park() {}
    pub fn extra() {}
}
";
        let ws = Workspace::from_sources(&[("crates/runtime/src/s.rs", src)]);
        let vs = check(&ws);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("`extra`"));
    }

    #[test]
    fn unrelated_cfg_mods_are_not_paired() {
        let src = "\
#[cfg(feature = \"a\")]
mod imp {
    pub fn f() {}
}
#[cfg(feature = \"b\")]
mod imp {
    pub fn g() {}
}
";
        let ws = Workspace::from_sources(&[("crates/x/src/m.rs", src)]);
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn allow_marker_waives() {
        let src = "\
#[cfg(feature = \"metrics\")]
mod imp {
    // xtask-lint: allow(feature-sym) — debug-only helper
    pub fn debug_dump() {}
    pub fn add(n: u64) {}
}
#[cfg(not(feature = \"metrics\"))]
mod imp {
    pub fn add(_n: u64) {}
}
";
        let ws = Workspace::from_sources(&[("crates/x/src/m.rs", src)]);
        assert!(check(&ws).is_empty(), "{:?}", check(&ws));
    }
}
