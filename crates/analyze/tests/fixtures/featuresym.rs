//! Golden fixture for the `feature-sym` rule: the two-`mod imp` idiom with
//! one function missing from the fallback variant and one signature drift.

#[cfg(feature = "simd")]
mod imp {
    pub fn sweep(xs: &mut [f64], shift: f64) -> f64 {
        xs.iter_mut().for_each(|x| *x -= shift);
        shift
    }
    pub fn probe(xs: &[f64]) -> usize { //~ ERROR feature-sym: missing
        xs.len()
    }
    pub fn drift(xs: &[f64]) -> f64 { //~ ERROR feature-sym: differs
        xs[0]
    }
}

#[cfg(not(feature = "simd"))]
mod imp {
    pub fn sweep(xs: &mut [f64], shift: f64) -> f64 {
        let mut last = shift;
        for x in xs {
            *x -= shift;
            last = *x;
        }
        last
    }
    pub fn drift(xs: &[f64]) -> f32 {
        xs[0] as f32
    }
}

pub use imp::sweep;
