//! Golden fixture for the `orderings` rule: an atomic site in scope that
//! the (empty) manifest does not classify. Mounted by the golden harness
//! at `crates/runtime/src/` so it falls inside the rule's scope.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn spin_until_stopped(stop: &AtomicBool) {
    while !stop.load(Ordering::Acquire) { //~ ERROR orderings: unclassified
        std::hint::spin_loop();
    }
}
