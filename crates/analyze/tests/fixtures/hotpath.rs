//! Golden fixture for the `hot-path` rule: one direct violation, one
//! transitive one, one unjustified allow, and clean code that must NOT be
//! reported. Expected findings are the `//~ ERROR` lines.

// dcst-hot
pub fn kernel(xs: &[f64]) -> f64 {
    let first = xs.first().unwrap(); //~ ERROR hot-path: `.unwrap()`
    helper(xs) + first
}

fn helper(xs: &[f64]) -> f64 {
    let buf = vec![0.0; xs.len()]; //~ ERROR hot-path: `vec!`
    // xtask-lint: allow(hot-path)
    let boxed = Box::new(xs.len()); //~ ERROR hot-path: needs a justification
    buf.len() as f64 + *boxed as f64
}

// dcst-hot
pub fn justified(xs: &[f64]) -> f64 {
    // xtask-lint: allow(hot-path) — cold fallback, measured irrelevant
    xs.iter().copied().fold(f64::NAN, f64::max).max(format!("{}", xs.len()).len() as f64)
}

pub fn cold() -> String {
    format!("allocation off the hot path is fine: {}", vec![1].len())
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        super::kernel(&[1.0]).to_string().push_str(&format!("{}", 1));
    }
}
