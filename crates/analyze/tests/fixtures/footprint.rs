//! Golden fixture for the `footprint` rule: a spawn body that takes a
//! mutable share-view while its task chain declares only reads, next to a
//! correctly-declared sibling and an ignored thread spawn.

pub fn bad(rt: &Rt, d: Share<f64>) {
    rt.task("Scale")
        .read(key_z(0))
        .spawn(move || {
            let zs = unsafe { d.range_mut(0..8) }; //~ ERROR footprint: write-class
            zs[0] = 1.0;
        });
}

pub fn good(rt: &Rt, d: Share<f64>) {
    rt.task("STEDC")
        .read(key_z(0))
        .write(key_d(0))
        .spawn_try(move || {
            let db = unsafe { d.range_mut(0..8) };
            db[0] = 1.0;
        });
}

pub fn not_a_taskflow(d: Share<f64>) {
    std::thread::Builder::new()
        .name("io".into())
        .spawn(move || {
            let xs = unsafe { d.range_mut(0..8) };
            xs[0] = 1.0;
        })
        .unwrap();
}
