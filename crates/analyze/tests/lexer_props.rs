//! Property tests for the lossless lexer and the stripper built on it.
//!
//! Inputs are "token soup": random sequences of fragments drawn from a pool
//! of adversarial Rust syntax — raw strings with varying hash depth, nested
//! block comments, escaped quotes, lifetimes, unicode identifiers — plus
//! deliberately unterminated literals and char-boundary truncation, the two
//! classes of input that broke the old regex stripper.

use dcst_analyze::lexer::{lex, strip_source, TokKind};
use dcst_analyze::parser::ParsedFile;
use proptest::prelude::*;

/// Fragment pool. Order matters only for reproducibility; every entry must
/// keep the *tiling* invariant (the lexer consumes every byte), including
/// the unterminated ones at the tail.
const FRAGMENTS: &[&str] = &[
    "fn f(x: &str) -> usize { x.len() }\n",
    "let s = \"str with // no comment \\\" end\";\n",
    "let r = r#\"raw \"quoted\" \\ not an escape\"#;\n",
    "let r2 = r##\"deeper \"# inside\"##;\n",
    "/* outer /* nested */ still comment */\n",
    "// line comment with \"quote\n",
    "/// doc: `unwrap()` in prose\n",
    "let c = 'a'; let nl = '\\n'; let q = '\\'';\n",
    "struct S<'a> { x: &'a str }\n",
    "static X: u8 = 0;\n",
    "let λ = \"λ✓\"; // unicode\n",
    "#[cfg(feature = \"simd\")]\n",
    "let n = 0x1f + 1_000.5e-3;\n",
    "q :: r . m ( ) ;\n",
    "}\n",
    "{\n",
    "'\\",     // truncated char escape (regression: old stripper panicked)
    "\"abc",   // unterminated string
    "r#\"abc", // unterminated raw string
    "/* abc",  // unterminated block comment
];

const TERMINATED: usize = 16; // FRAGMENTS[TERMINATED..] are unterminated

fn soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..FRAGMENTS.len(), 0..12)
        .prop_map(|picks| picks.into_iter().map(|i| FRAGMENTS[i]).collect())
}

/// Soup drawn only from self-contained fragments (balanced quotes and
/// comments, each ending in a newline) — leaves the lexer in a neutral
/// state, so a literal appended afterwards is lexed on its own terms.
fn terminated_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..TERMINATED, 0..12)
        .prop_map(|picks| picks.into_iter().map(|i| FRAGMENTS[i]).collect())
}

/// Truncate to at most `cut` bytes, backing off to a char boundary.
fn truncate_at(src: &str, mut cut: usize) -> &str {
    cut = cut.min(src.len());
    while !src.is_char_boundary(cut) {
        cut -= 1;
    }
    &src[..cut]
}

proptest! {
    /// Tokens tile the source exactly: contiguous spans, first at 0, last
    /// ending at `len`, and the concatenation reproduces the input.
    #[test]
    fn tokens_tile_the_source(src in soup()) {
        let toks = lex(&src);
        let mut pos = 0usize;
        for t in &toks {
            prop_assert_eq!(t.start, pos, "gap before token at {}", t.start);
            prop_assert!(t.end >= t.start);
            pos = t.end;
        }
        prop_assert_eq!(pos, src.len());
        let rejoined: String = toks.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(rejoined, src);
    }

    /// Token line numbers are 1-based and equal one plus the number of
    /// newlines before the token's start byte.
    #[test]
    fn line_numbers_match_newline_count(src in soup()) {
        for t in lex(&src) {
            let expect = 1 + src[..t.start].bytes().filter(|&b| b == b'\n').count() as u32;
            prop_assert_eq!(t.line, expect, "token at byte {}", t.start);
        }
    }

    /// The stripper preserves line structure (`src.lines()` count) and maps
    /// every character to itself or to a space — never shifting columns.
    #[test]
    fn strip_preserves_line_geometry(src in soup()) {
        let stripped = strip_source(&src);
        prop_assert_eq!(stripped.len(), src.lines().count());
        for (orig, strip) in src.lines().zip(&stripped) {
            prop_assert_eq!(orig.chars().count(), strip.chars().count());
            for (o, s) in orig.chars().zip(strip.chars()) {
                prop_assert!(s == o || s == ' ', "char {o:?} became {s:?}");
            }
        }
    }

    /// Nothing panics on truncated input — lexing, stripping, or full
    /// item-level parsing — and the tiling invariant still holds.
    #[test]
    fn truncation_never_panics(src in soup(), cut in 0usize..512) {
        let cut_src = truncate_at(&src, cut);
        let toks = lex(cut_src);
        prop_assert_eq!(toks.iter().map(|t| t.end - t.start).sum::<usize>(), cut_src.len());
        let _ = strip_source(cut_src);
        let _ = ParsedFile::new(cut_src);
    }

    /// Comment and literal *interiors* are opaque: after stripping, the
    /// sentinel string planted inside them never survives.
    #[test]
    fn opaque_interiors_are_blanked(pre in terminated_soup(), post in soup(), wrap in 0usize..4) {
        let planted = match wrap {
            0 => "let x = \"ZZSENTINELZZ\";\n".to_string(),
            1 => "let x = r#\"ZZSENTINELZZ\"#;\n".to_string(),
            2 => "/* ZZSENTINELZZ */\n".to_string(),
            _ => "// ZZSENTINELZZ\n".to_string(),
        };
        let src = format!("{pre}{planted}{post}");
        let survives = strip_source(&src).iter().any(|l| l.contains("ZZSENTINELZZ"));
        prop_assert!(!survives, "sentinel leaked through the stripper");
    }
}

/// Deterministic spot-check: every fragment in the pool lexes to at least
/// one token and classifies its head sensibly (no `Punct` explosion for
/// raw strings, comments stay comments).
#[test]
fn fragment_pool_classifies() {
    for frag in FRAGMENTS {
        let toks = lex(frag);
        assert!(!toks.is_empty(), "{frag:?} lexed to nothing");
    }
    assert_eq!(lex("r##\"x\"# y\"##")[0].kind, TokKind::RawStr);
    assert_eq!(lex("/* /* */ */")[0].kind, TokKind::BlockComment);
    assert_eq!(lex("'a'")[0].kind, TokKind::Char);
    assert_eq!(lex("'static")[0].kind, TokKind::Lifetime);
}
