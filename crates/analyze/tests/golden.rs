//! Golden-violation fixtures: one checked-in file per rule under
//! `tests/fixtures/` (a directory the workspace walker skips), annotated
//! ui-test style with `//~ ERROR <rule>: <substring>` on the line each
//! violation must be reported at. The harness fails on a missing expected
//! violation AND on any unexpected one, pinning both rule behaviour and
//! report locations.

use dcst_analyze::rules::{featuresym, footprint, hotpath, orderings};
use dcst_analyze::{Violation, Workspace};

struct Expect {
    line: u32,
    rule: String,
    substr: String,
}

/// Parse `//~ ERROR <rule>: <substring>` markers out of a fixture.
fn expectations(src: &str) -> Vec<Expect> {
    let mut out = Vec::new();
    for (idx, text) in src.lines().enumerate() {
        let Some(pos) = text.find("//~ ERROR ") else {
            continue;
        };
        let rest = &text[pos + "//~ ERROR ".len()..];
        let (rule, substr) = rest.split_once(':').expect("marker is `rule: substring`");
        out.push(Expect {
            line: idx as u32 + 1,
            rule: rule.trim().to_string(),
            substr: substr.trim().to_string(),
        });
    }
    assert!(!out.is_empty(), "fixture has no //~ ERROR markers");
    out
}

fn assert_matches(fixture: &str, src: &str, violations: &[Violation]) {
    let expects = expectations(src);
    for e in &expects {
        assert!(
            violations
                .iter()
                .any(|v| v.line == e.line && v.rule == e.rule && v.message.contains(&e.substr)),
            "{fixture}: expected [{}] at line {} containing {:?}; got:\n{}",
            e.rule,
            e.line,
            e.substr,
            render(violations),
        );
    }
    assert_eq!(
        violations.len(),
        expects.len(),
        "{fixture}: unexpected extra violations:\n{}",
        render(violations),
    );
}

fn render(vs: &[Violation]) -> String {
    vs.iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn golden_hotpath() {
    let src = include_str!("fixtures/hotpath.rs");
    let ws = Workspace::from_sources(&[("crates/matrix/src/golden.rs", src)]);
    assert_matches("hotpath.rs", src, &hotpath::check(&ws));
}

#[test]
fn golden_featuresym() {
    let src = include_str!("fixtures/featuresym.rs");
    let ws = Workspace::from_sources(&[("crates/secular/src/golden.rs", src)]);
    assert_matches("featuresym.rs", src, &featuresym::check(&ws));
}

#[test]
fn golden_footprint() {
    let src = include_str!("fixtures/footprint.rs");
    let ws = Workspace::from_sources(&[("crates/dcst/src/golden.rs", src)]);
    assert_matches("footprint.rs", src, &footprint::check(&ws));
}

#[test]
fn golden_orderings() {
    let src = include_str!("fixtures/orderings.rs");
    let ws = Workspace::from_sources(&[("crates/runtime/src/golden.rs", src)]);
    // Checked against an empty manifest: the one site must be unclassified.
    assert_matches("orderings.rs", src, &orderings::check(&ws, &[]));
}
