//! Householder bidiagonalization of dense square matrices (`dgebrd`
//! analogue) and the dense SVD driver built on top of it.

use crate::{svd_bidiagonal, Bidiagonal, Svd};
use dcst_core::{DcError, DcOptions};
use dcst_matrix::{dot, gemm, nrm2, Matrix};

/// The stored reflectors of a bidiagonalization `A = Q_L · B · Q_Rᵀ`:
/// left reflectors below the diagonal of `vs`, right reflectors to the
/// right of the superdiagonal.
pub struct BidiagFactors {
    vs: Matrix,
    tau_l: Vec<f64>,
    tau_r: Vec<f64>,
}

/// Generate a reflector `H = I − τ v vᵀ` with `v[0] = 1` sending
/// `[alpha; x]` to `[beta; 0]`; overwrites `x` with the essential part.
fn larfg(alpha: f64, x: &mut [f64]) -> (f64, f64) {
    let xnorm = nrm2(x);
    if xnorm == 0.0 {
        return (alpha, 0.0);
    }
    let beta = -dcst_matrix::util::sign(dcst_matrix::util::lapy2(alpha, xnorm), alpha);
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for xi in x {
        *xi *= scale;
    }
    (beta, tau)
}

/// Reduce a dense square matrix to upper bidiagonal form:
/// `B = Q_Lᵀ · A · Q_R`. Returns the bidiagonal and the factored
/// transformations.
pub fn bidiagonalize(a: &Matrix) -> (Bidiagonal, BidiagFactors) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "square matrices only");
    let mut w = a.clone();
    let mut tau_l = vec![0.0; n];
    let mut tau_r = vec![0.0; n.saturating_sub(1)];
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n.saturating_sub(1)];

    for i in 0..n {
        // --- left reflector annihilating column i below the diagonal.
        let alpha = w[(i, i)];
        let (beta, tl) = {
            let col = w.col_mut(i);
            larfg(alpha, &mut col[i + 1..])
        };
        tau_l[i] = tl;
        d[i] = beta;
        if tl != 0.0 {
            // Apply H_L to the trailing columns i+1..n: for each column c,
            // c ← c − τ v (vᵀ c) with v = [1; w[i+1.., i]].
            let m = n - i;
            let vcol: Vec<f64> = {
                let col = w.col(i);
                let mut v = Vec::with_capacity(m);
                v.push(1.0);
                v.extend_from_slice(&col[i + 1..]);
                v
            };
            for j in i + 1..n {
                let c = &mut w.col_mut(j)[i..];
                let s = tl * dot(&vcol, c);
                for (ci, vi) in c.iter_mut().zip(&vcol) {
                    *ci -= s * vi;
                }
            }
        }
        // --- right reflector annihilating row i right of the superdiagonal.
        if i + 1 < n {
            let alpha = w[(i, i + 1)];
            // Gather the row segment, reflect, scatter back.
            let mut row: Vec<f64> = (i + 2..n).map(|j| w[(i, j)]).collect();
            let (beta, tr) = larfg(alpha, &mut row);
            tau_r[i] = tr;
            e[i] = beta;
            for (jj, j) in (i + 2..n).enumerate() {
                w[(i, j)] = row[jj];
            }
            if tr != 0.0 {
                // Apply H_R from the right to rows i+1..n:
                // row_r ← row_r − τ (row_r · v) vᵀ, v = [1; row].
                let mut v = Vec::with_capacity(n - i - 1);
                v.push(1.0);
                v.extend_from_slice(&row);
                for r in i + 1..n {
                    let mut s = 0.0;
                    for (jj, j) in (i + 1..n).enumerate() {
                        s += w[(r, j)] * v[jj];
                    }
                    s *= tr;
                    for (jj, j) in (i + 1..n).enumerate() {
                        w[(r, j)] -= s * v[jj];
                    }
                }
            }
        }
    }
    (
        Bidiagonal::new(d, e),
        BidiagFactors {
            vs: w,
            tau_l,
            tau_r,
        },
    )
}

impl BidiagFactors {
    /// Overwrite `m` with `Q_L · m` (left reflectors, reverse order).
    /// Each reflector is applied to the whole block through two GEMM calls
    /// (`s = τ vᵀ M2`, then `M2 ← M2 − v s`) on the packed kernel.
    pub fn apply_ql(&self, m: &mut Matrix) {
        let n = self.vs.rows();
        assert_eq!(m.rows(), n);
        let ncols = m.cols();
        if ncols == 0 {
            return;
        }
        let mut v = vec![0.0; n];
        let mut s = vec![0.0; ncols];
        for i in (0..n).rev() {
            let t = self.tau_l[i];
            if t == 0.0 {
                continue;
            }
            let len = n - i;
            v[0] = 1.0;
            v[1..len].copy_from_slice(&self.vs.col(i)[i + 1..]);
            let m2 = &mut m.as_mut_slice()[i..];
            gemm(1, ncols, len, t, &v[..len], 1, m2, n, 0.0, &mut s, 1);
            gemm(len, ncols, 1, -1.0, &v[..len], len, &s, 1, 1.0, m2, n);
        }
    }

    /// Overwrite `m` with `Q_R · m` (right reflectors, reverse order).
    /// `Q_R` acts on the row space: reflector `i` lives in rows `i+1..n`.
    pub fn apply_qr(&self, m: &mut Matrix) {
        let n = self.vs.rows();
        assert_eq!(m.rows(), n);
        let ncols = m.cols();
        if ncols == 0 {
            return;
        }
        let mut v = vec![0.0; n];
        let mut s = vec![0.0; ncols];
        for i in (0..n.saturating_sub(1)).rev() {
            let t = self.tau_r[i];
            if t == 0.0 {
                continue;
            }
            let len = n - i - 1;
            v[0] = 1.0;
            for (jj, j) in (i + 2..n).enumerate() {
                v[jj + 1] = self.vs[(i, j)];
            }
            let m2 = &mut m.as_mut_slice()[i + 1..];
            gemm(1, ncols, len, t, &v[..len], 1, m2, n, 0.0, &mut s, 1);
            gemm(len, ncols, 1, -1.0, &v[..len], len, &s, 1, 1.0, m2, n);
        }
    }
}

/// Full dense SVD `A = U Σ Vᵀ` of a square matrix: bidiagonalize, solve
/// the bidiagonal SVD through the Golub–Kahan embedding and the task-flow
/// D&C eigensolver, back-transform both singular-vector sets.
pub fn svd_dense(a: &Matrix, opts: DcOptions) -> Result<Svd, DcError> {
    let (b, factors) = bidiagonalize(a);
    let inner = svd_bidiagonal(&b, opts)?;
    let mut u = inner.u;
    factors.apply_ql(&mut u);
    let mut v = inner.vt.transpose();
    factors.apply_qr(&mut v);
    Ok(Svd {
        u,
        s: inner.s,
        vt: v.transpose(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcst_matrix::{gemm, orthogonality_error};
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn rand_matrix(n: usize, seed: u64) -> Matrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn reconstruct(svd: &Svd) -> Matrix {
        let n = svd.s.len();
        // U · diag(s) · Vt
        let mut us = svd.u.clone();
        for (j, &s) in svd.s.iter().enumerate() {
            us.col_mut(j).iter_mut().for_each(|x| *x *= s);
        }
        let mut out = Matrix::zeros(n, n);
        gemm(
            n,
            n,
            n,
            1.0,
            us.as_slice(),
            n,
            svd.vt.as_slice(),
            n,
            0.0,
            out.as_mut_slice(),
            n,
        );
        out
    }

    #[test]
    fn bidiagonalization_preserves_singular_values() {
        // Frobenius norm is invariant under orthogonal transforms.
        let a = rand_matrix(12, 3);
        let (b, _) = bidiagonalize(&a);
        let fro_a: f64 = a.as_slice().iter().map(|x| x * x).sum();
        let fro_b: f64 = b.d.iter().chain(&b.e).map(|x| x * x).sum();
        assert!((fro_a - fro_b).abs() < 1e-10 * fro_a, "{fro_a} vs {fro_b}");
    }

    #[test]
    fn dense_svd_reconstructs_the_matrix() {
        for n in [3usize, 8, 25, 60] {
            let a = rand_matrix(n, n as u64);
            let svd = svd_dense(&a, DcOptions::default()).unwrap();
            assert!(orthogonality_error(&svd.u) < 1e-12, "U orthogonal n={n}");
            assert!(
                orthogonality_error(&svd.vt.transpose()) < 1e-12,
                "V orthogonal n={n}"
            );
            let back = reconstruct(&svd);
            for j in 0..n {
                for i in 0..n {
                    assert!(
                        (back[(i, j)] - a[(i, j)]).abs() < 1e-10,
                        "n={n} ({i},{j}): {} vs {}",
                        back[(i, j)],
                        a[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn identity_has_unit_singular_values() {
        let svd = svd_dense(&Matrix::identity(10), DcOptions::default()).unwrap();
        for &s in &svd.s {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_values_of_known_matrix() {
        // A = diag(5, 3, 1) rotated is still σ = {5, 3, 1}.
        let a = Matrix::from_vec(2, 2, vec![0.0, -2.0, 3.0, 0.0]);
        // [[0, 3], [-2, 0]] has singular values {3, 2}.
        let svd = svd_dense(&a, DcOptions::default()).unwrap();
        assert!((svd.s[0] - 3.0).abs() < 1e-13, "{:?}", svd.s);
        assert!((svd.s[1] - 2.0).abs() < 1e-13);
    }

    #[test]
    fn rank_deficient_matrix() {
        // Outer product: rank one.
        let n = 6;
        let a = Matrix::from_fn(n, n, |i, j| ((i + 1) * (j + 1)) as f64);
        let svd = svd_dense(&a, DcOptions::default()).unwrap();
        assert!(svd.s[0] > 1.0);
        for &s in &svd.s[1..] {
            assert!(s < 1e-10 * svd.s[0], "trailing singular values ~ 0: {s}");
        }
        let back = reconstruct(&svd);
        for j in 0..n {
            for i in 0..n {
                assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-9 * svd.s[0]);
            }
        }
    }
}
