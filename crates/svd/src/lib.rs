//! Singular value decomposition through the task-flow D&C eigensolver.
//!
//! The paper's conclusion points at the SVD as the natural next target for
//! the task-flow approach ("the Singular Value Decomposition follows the
//! same scheme … it is also a good candidate"). This crate realizes that
//! direction with the classic Golub–Kahan trick: the permuted
//! Jordan–Wielandt matrix of an upper-bidiagonal `B` (diagonal `d`,
//! superdiagonal `e`) is the `2n × 2n` **symmetric tridiagonal** matrix
//! with zero diagonal and off-diagonals `d₁, e₁, d₂, e₂, …, dₙ`. Its
//! eigenvalues are `±σᵢ` and its eigenvectors interleave the left/right
//! singular vectors — so one call to [`TaskFlowDc`] yields the whole SVD.
//!
//! For dense inputs, [`bidiagonalize`] reduces a square matrix to upper
//! bidiagonal form with alternating left/right Householder reflectors
//! (`dgebrd` analogue) and [`svd_dense`] chains the whole pipeline
//! `A = (Q_L · U_B) Σ (Q_R · V_B)ᵀ`.

mod bidiagonalize;

pub use bidiagonalize::{bidiagonalize, svd_dense, BidiagFactors};

use dcst_core::{DcError, DcOptions, TaskFlowDc, TridiagEigensolver};
use dcst_matrix::Matrix;
use dcst_tridiag::SymTridiag;

/// An upper bidiagonal matrix: diagonal `d` (length n), superdiagonal `e`
/// (length n−1).
#[derive(Clone, Debug, PartialEq)]
pub struct Bidiagonal {
    pub d: Vec<f64>,
    pub e: Vec<f64>,
}

impl Bidiagonal {
    pub fn new(d: Vec<f64>, e: Vec<f64>) -> Self {
        assert!(
            d.is_empty() && e.is_empty() || e.len() + 1 == d.len(),
            "superdiagonal must be one shorter than the diagonal"
        );
        Bidiagonal { d, e }
    }

    pub fn n(&self) -> usize {
        self.d.len()
    }

    /// `y = B x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        let n = self.n();
        for i in 0..n {
            y[i] = self.d[i] * x[i] + if i + 1 < n { self.e[i] * x[i + 1] } else { 0.0 };
        }
    }

    /// The Golub–Kahan symmetric tridiagonal embedding: zero diagonal,
    /// off-diagonals `d₁, e₁, d₂, e₂, …, dₙ` (size 2n).
    pub fn golub_kahan(&self) -> SymTridiag {
        let n = self.n();
        let mut off = Vec::with_capacity(2 * n - 1);
        for i in 0..n {
            off.push(self.d[i]);
            if i + 1 < n {
                off.push(self.e[i]);
            }
        }
        SymTridiag::new(vec![0.0; 2 * n], off)
    }
}

/// Result of an SVD: `a = u * diag(s) * vt`, singular values descending.
#[derive(Clone, Debug)]
pub struct Svd {
    pub u: Matrix,
    pub s: Vec<f64>,
    pub vt: Matrix,
}

/// SVD of an upper bidiagonal matrix through the Golub–Kahan embedding and
/// the task-flow D&C eigensolver.
pub fn svd_bidiagonal(b: &Bidiagonal, opts: DcOptions) -> Result<Svd, DcError> {
    let n = b.n();
    if n == 0 {
        return Ok(Svd {
            u: Matrix::zeros(0, 0),
            s: vec![],
            vt: Matrix::zeros(0, 0),
        });
    }
    let gk = b.golub_kahan();
    let eig = TaskFlowDc::new(opts).solve(&gk)?;

    // Eigenvalues come in ±σ pairs sorted ascending: the top n are the
    // singular values ascending; reverse for the descending convention.
    let mut u = Matrix::zeros(n, n);
    let mut vt = Matrix::zeros(n, n);
    let mut s = Vec::with_capacity(n);
    for j in 0..n {
        let col = 2 * n - 1 - j; // descending positive eigenvalues
        s.push(eig.values[col].max(0.0));
        let x = eig.vectors.col(col);
        // x interleaves (v₁, u₁, v₂, u₂, …)/√2.
        let ucol = u.col_mut(j);
        for i in 0..n {
            ucol[i] = x[2 * i + 1];
        }
        for i in 0..n {
            vt[(j, i)] = x[2 * i];
        }
        // Normalize each half individually (they each have norm 1/√2 up to
        // rounding; exact for non-degenerate σ).
        let un = dcst_matrix::nrm2(u.col(j));
        let vn: f64 = (0..n).map(|i| vt[(j, i)] * vt[(j, i)]).sum::<f64>().sqrt();
        if un > 1e-8 {
            let inv = 1.0 / un;
            u.col_mut(j).iter_mut().for_each(|x| *x *= inv);
        }
        if vn > 1e-8 {
            let inv = 1.0 / vn;
            for i in 0..n {
                vt[(j, i)] *= inv;
            }
        }
    }
    // Degenerate σ (notably exact zeros) can leave a half of a GK
    // eigenvector empty; complete the bases so U and V stay orthonormal
    // (for σ = 0 any orthonormal completion is a valid SVD factor).
    complete_basis_columns(&mut u);
    let mut v = vt.transpose();
    complete_basis_columns(&mut v);
    let vt = v.transpose();
    Ok(Svd { u, s, vt })
}

/// Replace near-zero columns of `m` (square, otherwise orthonormal) by
/// unit vectors orthogonalized against every other column.
fn complete_basis_columns(m: &mut Matrix) {
    let n = m.rows();
    for j in 0..n {
        if dcst_matrix::nrm2(m.col(j)) > 0.5 {
            continue;
        }
        // Try canonical basis vectors until one survives projection.
        'seed: for seed in 0..n {
            let mut cand = vec![0.0f64; n];
            cand[(j + seed) % n] = 1.0;
            for other in 0..n {
                if other == j {
                    continue;
                }
                let dot = dcst_matrix::dot(&cand, m.col(other));
                for (c, o) in cand.iter_mut().zip(m.col(other)) {
                    *c -= dot * o;
                }
            }
            let nrm = dcst_matrix::nrm2(&cand);
            if nrm > 1e-3 {
                let inv = 1.0 / nrm;
                for (slot, c) in m.col_mut(j).iter_mut().zip(&cand) {
                    *slot = c * inv;
                }
                break 'seed;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcst_matrix::orthogonality_error;

    fn check_svd(b: &Bidiagonal, svd: &Svd, tol: f64) {
        let n = b.n();
        assert!(
            svd.s.windows(2).all(|w| w[0] >= w[1]),
            "singular values descending"
        );
        assert!(
            svd.s.iter().all(|&x| x >= 0.0),
            "singular values non-negative"
        );
        assert!(orthogonality_error(&svd.u) < tol, "U orthogonal");
        assert!(
            orthogonality_error(&svd.vt.transpose()) < tol,
            "V orthogonal"
        );
        // Reconstruct: B vᵀ_j = σ_j u_j.
        let mut bv = vec![0.0; n];
        for j in 0..n {
            let vrow: Vec<f64> = (0..n).map(|i| svd.vt[(j, i)]).collect();
            b.matvec(&vrow, &mut bv);
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                assert!(
                    (bv[i] - svd.s[j] * svd.u[(i, j)]).abs()
                        < tol * b.d.iter().fold(1.0f64, |m, &x| m.max(x.abs())) * n as f64,
                    "B v != s u at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn diagonal_matrix_svd() {
        let b = Bidiagonal::new(vec![3.0, -1.0, 2.0], vec![0.0, 0.0]);
        let svd = svd_bidiagonal(&b, DcOptions::default()).unwrap();
        assert!((svd.s[0] - 3.0).abs() < 1e-12);
        assert!((svd.s[1] - 2.0).abs() < 1e-12);
        assert!((svd.s[2] - 1.0).abs() < 1e-12);
        check_svd(&b, &svd, 1e-10);
    }

    #[test]
    fn golub_kahan_embedding_shape() {
        let b = Bidiagonal::new(vec![1.0, 2.0, 3.0], vec![0.5, 0.25]);
        let gk = b.golub_kahan();
        assert_eq!(gk.n(), 6);
        assert!(gk.d.iter().all(|&x| x == 0.0));
        assert_eq!(gk.e, vec![1.0, 0.5, 2.0, 0.25, 3.0]);
    }

    #[test]
    fn random_bidiagonal_svd() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for n in [2usize, 5, 17, 40] {
            let d: Vec<f64> = (0..n).map(|_| rng.gen_range(0.2..2.0)).collect();
            let e: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b = Bidiagonal::new(d, e);
            let svd = svd_bidiagonal(&b, DcOptions::default()).unwrap();
            check_svd(&b, &svd, 1e-10);
            // σ² are the eigenvalues of BᵀB: check the largest against a
            // power-iteration estimate.
            let frob: f64 = b.d.iter().chain(&b.e).map(|x| x * x).sum::<f64>();
            let sumsq: f64 = svd.s.iter().map(|x| x * x).sum();
            assert!(
                (frob - sumsq).abs() < 1e-10 * frob.max(1.0),
                "Frobenius identity"
            );
        }
    }

    #[test]
    fn singular_values_match_gk_spectrum_symmetry() {
        let b = Bidiagonal::new(vec![2.0, 1.0, 0.5, 3.0], vec![0.3, -0.2, 0.7]);
        let gk = b.golub_kahan();
        let eig = TaskFlowDc::new(DcOptions::default()).solve(&gk).unwrap();
        // Spectrum symmetric about zero.
        let n2 = gk.n();
        for i in 0..n2 {
            let mirror = eig.values[n2 - 1 - i];
            assert!((eig.values[i] + mirror).abs() < 1e-12, "±σ symmetry");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let svd = svd_bidiagonal(&Bidiagonal::new(vec![], vec![]), DcOptions::default()).unwrap();
        assert!(svd.s.is_empty());
        let svd =
            svd_bidiagonal(&Bidiagonal::new(vec![-4.0], vec![]), DcOptions::default()).unwrap();
        assert!((svd.s[0] - 4.0).abs() < 1e-14);
    }
}
