//! SVD extension coverage: scaling laws, orthogonal inputs, Golub–Kahan
//! structure, and property-based reconstruction.

use dcst_core::DcOptions;
use dcst_matrix::{gemm, orthogonality_error, Matrix};
use dcst_svd::{bidiagonalize, svd_bidiagonal, svd_dense, Bidiagonal};
use proptest::prelude::*;

fn reconstruct(svd: &dcst_svd::Svd) -> Matrix {
    let n = svd.s.len();
    let mut us = svd.u.clone();
    for (j, &s) in svd.s.iter().enumerate() {
        us.col_mut(j).iter_mut().for_each(|x| *x *= s);
    }
    let mut out = Matrix::zeros(n, n);
    gemm(
        n,
        n,
        n,
        1.0,
        us.as_slice(),
        n,
        svd.vt.as_slice(),
        n,
        0.0,
        out.as_mut_slice(),
        n,
    );
    out
}

#[test]
fn orthogonal_matrix_has_unit_spectrum() {
    // A rotation matrix: all singular values exactly 1.
    let n = 8;
    let theta = 0.37f64;
    let mut a = Matrix::identity(n);
    // Compose a few plane rotations.
    for p in 0..n - 1 {
        let (c, s) = (theta.cos(), theta.sin());
        for i in 0..n {
            let (x, y) = (a[(i, p)], a[(i, p + 1)]);
            a[(i, p)] = c * x - s * y;
            a[(i, p + 1)] = s * x + c * y;
        }
    }
    let svd = svd_dense(&a, DcOptions::default()).unwrap();
    for &s in &svd.s {
        assert!((s - 1.0).abs() < 1e-13, "{s}");
    }
}

#[test]
fn scaling_scales_singular_values() {
    let b = Bidiagonal::new(vec![1.0, 2.0, 0.5, 1.5], vec![0.3, -0.4, 0.2]);
    let scaled = Bidiagonal::new(
        b.d.iter().map(|x| 10.0 * x).collect(),
        b.e.iter().map(|x| 10.0 * x).collect(),
    );
    let s1 = svd_bidiagonal(&b, DcOptions::default()).unwrap().s;
    let s2 = svd_bidiagonal(&scaled, DcOptions::default()).unwrap().s;
    for (a, b) in s1.iter().zip(&s2) {
        assert!((10.0 * a - b).abs() < 1e-12);
    }
}

#[test]
fn transpose_has_same_singular_values() {
    let n = 20;
    let mut rng_state = 123u64;
    let mut next = move || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (rng_state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let a = Matrix::from_fn(n, n, |_, _| next());
    let s1 = svd_dense(&a, DcOptions::default()).unwrap().s;
    let s2 = svd_dense(&a.transpose(), DcOptions::default()).unwrap().s;
    for (x, y) in s1.iter().zip(&s2) {
        assert!((x - y).abs() < 1e-11, "{x} vs {y}");
    }
}

#[test]
fn bidiagonalize_zero_matrix() {
    let a = Matrix::zeros(6, 6);
    let (b, _) = bidiagonalize(&a);
    assert!(b.d.iter().all(|&x| x == 0.0));
    assert!(b.e.iter().all(|&x| x == 0.0));
    let svd = svd_dense(&a, DcOptions::default()).unwrap();
    assert!(svd.s.iter().all(|&s| s.abs() < 1e-300));
    assert!(orthogonality_error(&svd.u) < 1e-12);
}

#[test]
fn golub_kahan_eigvecs_interleave() {
    // The GK eigenvector halves must each carry half the norm for a
    // non-degenerate σ.
    let b = Bidiagonal::new(vec![2.0, 1.0, 3.0], vec![0.5, 0.7]);
    let gk = b.golub_kahan();
    let eig = dcst_core::TaskFlowDc::new(DcOptions::default())
        .solve(&gk)
        .unwrap();
    use dcst_core::TridiagEigensolver as _;
    let top = eig.vectors.col(5); // largest σ
    let vnorm: f64 = (0..3).map(|i| top[2 * i] * top[2 * i]).sum::<f64>().sqrt();
    let unorm: f64 = (0..3)
        .map(|i| top[2 * i + 1] * top[2 * i + 1])
        .sum::<f64>()
        .sqrt();
    assert!(
        (vnorm - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10,
        "{vnorm}"
    );
    assert!(
        (unorm - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10,
        "{unorm}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn random_bidiagonal_reconstructs(
        d in proptest::collection::vec(0.1f64..3.0, 2..24),
        seed in 0u64..1000,
    ) {
        let n = d.len();
        let e: Vec<f64> = (0..n - 1)
            .map(|i| ((seed.wrapping_mul(i as u64 + 7) % 19) as f64 / 19.0) - 0.5)
            .collect();
        let b = Bidiagonal::new(d, e);
        let svd = svd_bidiagonal(&b, DcOptions::default()).unwrap();
        prop_assert!(orthogonality_error(&svd.u) < 1e-11);
        prop_assert!(orthogonality_error(&svd.vt.transpose()) < 1e-11);
        // Frobenius identity.
        let fro: f64 = b.d.iter().chain(&b.e).map(|x| x * x).sum();
        let ssq: f64 = svd.s.iter().map(|x| x * x).sum();
        prop_assert!((fro - ssq).abs() < 1e-9 * fro.max(1.0));
        // Reconstruct B v = σ u column-wise.
        let mut bv = vec![0.0; n];
        for j in 0..n {
            let vrow: Vec<f64> = (0..n).map(|i| svd.vt[(j, i)]).collect();
            b.matvec(&vrow, &mut bv);
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                prop_assert!((bv[i] - svd.s[j] * svd.u[(i, j)]).abs() < 1e-9);
            }
        }
        let _ = reconstruct; // dense reconstruction exercised in unit tests
    }
}
