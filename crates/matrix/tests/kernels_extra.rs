//! Additional kernel coverage: accumulation semantics, degenerate shapes,
//! sub-matrix addressing, and metric edge cases.

use dcst_matrix::*;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn rand_vec(rng: &mut impl Rng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

#[test]
fn gemm_beta_one_accumulates() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let (m, n, k) = (6, 5, 4);
    let a = rand_vec(&mut rng, m * k);
    let b = rand_vec(&mut rng, k * n);
    let mut once = vec![0.0; m * n];
    gemm(m, n, k, 1.0, &a, m, &b, k, 0.0, &mut once, m);
    let mut twice = vec![0.0; m * n];
    gemm(m, n, k, 0.5, &a, m, &b, k, 0.0, &mut twice, m);
    gemm(m, n, k, 0.5, &a, m, &b, k, 1.0, &mut twice, m);
    for (x, y) in once.iter().zip(&twice) {
        assert!((x - y).abs() < 1e-14);
    }
}

#[test]
fn gemm_k_zero_applies_beta_only() {
    let mut c = vec![2.0; 6];
    gemm(2, 3, 0, 1.0, &[], 2, &[], 1, 0.5, &mut c, 2);
    assert!(c.iter().all(|&x| x == 1.0));
    gemm(2, 3, 0, 1.0, &[], 2, &[], 1, 0.0, &mut c, 2);
    assert!(c.iter().all(|&x| x == 0.0));
}

#[test]
fn gemm_alpha_zero_is_beta_scale() {
    let a = vec![f64::NAN; 4]; // must never be read
    let b = vec![f64::NAN; 4];
    let mut c = vec![3.0; 4];
    gemm(2, 2, 2, 0.0, &a, 2, &b, 2, 2.0, &mut c, 2);
    assert!(c.iter().all(|&x| x == 6.0));
}

#[test]
fn gemm_single_column_and_row() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    // m x 1 and 1 x n products against gemv.
    let (m, k) = (9, 7);
    let a = rand_vec(&mut rng, m * k);
    let x = rand_vec(&mut rng, k);
    let mut c = vec![0.0; m];
    gemm(m, 1, k, 1.0, &a, m, &x, k, 0.0, &mut c, m);
    let mut y = vec![0.0; m];
    gemv(m, k, 1.0, &a, m, &x, 0.0, &mut y);
    for (u, v) in c.iter().zip(&y) {
        assert!((u - v).abs() < 1e-14);
    }
}

#[test]
fn gemm_tall_skinny_and_short_fat() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for &(m, n, k) in &[(200usize, 3usize, 2usize), (2, 200, 3), (3, 2, 200)] {
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let mut c = vec![0.0; m * n];
        gemm(m, n, k, 1.0, &a, m, &b, k, 0.0, &mut c, m);
        // Spot check one entry against a scalar dot product.
        let (i, j) = (m - 1, n - 1);
        let want: f64 = (0..k).map(|l| a[i + l * m] * b[l + j * k]).sum();
        assert!((c[i + j * m] - want).abs() < 1e-12, "({m},{n},{k})");
    }
}

#[test]
fn gemm_par_threads_exceeding_columns() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let (m, n, k) = (5, 2, 3);
    let a = rand_vec(&mut rng, m * k);
    let b = rand_vec(&mut rng, k * n);
    let mut c1 = vec![0.0; m * n];
    let mut c2 = vec![0.0; m * n];
    gemm(m, n, k, 1.0, &a, m, &b, k, 0.0, &mut c1, m);
    gemm_par(16, m, n, k, 1.0, &a, m, &b, k, 0.0, &mut c2, m);
    assert_eq!(c1, c2);
}

#[test]
fn gemv_beta_one_accumulates() {
    let a = vec![1.0, 0.0, 0.0, 1.0]; // identity
    let mut y = vec![5.0, 7.0];
    gemv(2, 2, 1.0, &a, 2, &[1.0, 2.0], 1.0, &mut y);
    assert_eq!(y, vec![6.0, 9.0]);
}

#[test]
fn merge_perm_descending_interleave() {
    // First run much larger values than second.
    let d = [10.0, 11.0, 12.0, 1.0, 2.0];
    let p = merge_perm(&d, 3);
    assert_eq!(p, vec![3, 4, 0, 1, 2]);
}

#[test]
fn orthogonality_error_detects_scaling() {
    let mut v = dcst_matrix::Matrix::identity(4);
    v[(0, 0)] = 0.5; // not unit norm
    assert!(orthogonality_error(&v) > 0.7 / 4.0);
}

#[test]
fn residual_error_uses_operator_norm_scaling() {
    // Same eigen-defect, bigger norm ⇒ smaller relative residual.
    let t = |x: &[f64], y: &mut [f64]| {
        y[0] = x[0];
        y[1] = 2.0 * x[1];
    };
    let v = dcst_matrix::Matrix::identity(2);
    let small = residual_error(2, t, &[1.0, 2.1], &v, 2.0);
    let large = residual_error(2, t, &[1.0, 2.1], &v, 200.0);
    assert!((small / large - 100.0).abs() < 1e-9);
}

#[test]
fn matrix_panel_mut_is_contiguous_columns() {
    let mut m = dcst_matrix::Matrix::zeros(3, 4);
    m.panel_mut(1, 3).fill(7.0);
    for i in 0..3 {
        assert_eq!(m[(i, 0)], 0.0);
        assert_eq!(m[(i, 1)], 7.0);
        assert_eq!(m[(i, 2)], 7.0);
        assert_eq!(m[(i, 3)], 0.0);
    }
}

#[test]
fn lapy2_extreme_exponents() {
    use dcst_matrix::util::lapy2;
    assert!(lapy2(1e308, 1e308).is_finite());
    assert!(lapy2(1e-308, 1e-308) > 0.0);
    assert_eq!(lapy2(0.0, -7.0), 7.0);
}
