//! Property tests pitting the packed micro-kernel GEMM (and its pool-tiled
//! parallel form) against a naive triple loop across adversarial shapes:
//! every dimension drawn from the micro-kernel/cache-block boundary set
//! {1, MR-1, MR, MR+1, 2*MC+3}, operands embedded in larger buffers with
//! slack leading dimensions, and alpha/beta from {0, 1, -0.5}.

use dcst_matrix::{gemm, gemm_axpy_ref, gemm_par, MC, MR};
use proptest::prelude::*;

/// Naive `C = alpha*A*B + beta*C` with explicit leading dimensions — the
/// independent oracle (no blocking, no packing, no unrolling).
#[allow(clippy::too_many_arguments)]
fn gemm_naive(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    for j in 0..n {
        for i in 0..m {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a[i + l * lda] * b[l + j * ldb];
            }
            c[i + j * ldc] = alpha * acc + beta * c[i + j * ldc];
        }
    }
}

/// Shapes straddling every blocking boundary: unit, one-off-micro-tile,
/// exact micro-tile, and spilling past two MC cache blocks.
fn dim() -> impl Strategy<Value = usize> {
    (0usize..5).prop_map(|i| [1, MR - 1, MR, MR + 1, 2 * MC + 3][i])
}

fn coeff() -> impl Strategy<Value = f64> {
    (0usize..3).prop_map(|i| [0.0, 1.0, -0.5][i])
}

struct Case {
    m: usize,
    n: usize,
    k: usize,
    lda: usize,
    ldb: usize,
    ldc: usize,
    alpha: f64,
    beta: f64,
    a: Vec<f64>,
    b: Vec<f64>,
    c0: Vec<f64>,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        dim(),
        dim(),
        dim(),
        0usize..4,
        0usize..4,
        0usize..4,
        coeff(),
        coeff(),
    )
        .prop_flat_map(|(m, n, k, sa, sb, sc, alpha, beta)| {
            // Slack pads the leading dimension, embedding each operand as a
            // sub-matrix of a taller buffer.
            let (lda, ldb, ldc) = (m + sa, k + sb, m + sc);
            let alen = if k == 0 { 0 } else { (k - 1) * lda + m };
            let blen = if n == 0 { 0 } else { (n - 1) * ldb + k };
            let clen = if n == 0 { 0 } else { (n - 1) * ldc + m };
            (
                proptest::collection::vec(-1.0f64..1.0, alen.max(1)),
                proptest::collection::vec(-1.0f64..1.0, blen.max(1)),
                proptest::collection::vec(-1.0f64..1.0, clen.max(1)),
            )
                .prop_map(move |(a, b, c0)| Case {
                    m,
                    n,
                    k,
                    lda,
                    ldb,
                    ldc,
                    alpha,
                    beta,
                    a,
                    b,
                    c0,
                })
        })
}

fn tolerance(k: usize) -> f64 {
    1e-12 * (k as f64).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn packed_gemm_matches_naive(case in arb_case()) {
        let Case { m, n, k, lda, ldb, ldc, alpha, beta, a, b, c0 } = case;
        let mut c = c0.clone();
        let mut cref = c0.clone();
        gemm(m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c, ldc);
        gemm_naive(m, n, k, alpha, &a, lda, &b, ldb, beta, &mut cref, ldc);
        for j in 0..n {
            for i in 0..m {
                let (x, y) = (c[i + j * ldc], cref[i + j * ldc]);
                prop_assert!((x - y).abs() < tolerance(k),
                    "C[{i},{j}] = {x} vs naive {y} (m={m} n={n} k={k} lda={lda} alpha={alpha} beta={beta})");
            }
        }
        // Slack rows between columns must never be written.
        for j in 0..n {
            for i in m..ldc {
                let idx = i + j * ldc;
                if idx < c.len() {
                    prop_assert_eq!(c[idx], c0[idx]);
                }
            }
        }
        return Ok(());
    }

    #[test]
    fn parallel_gemm_matches_sequential(case in arb_case(), nt in 1usize..5) {
        let Case { m, n, k, lda, ldb, ldc, alpha, beta, a, b, c0 } = case;
        let mut cpar = c0.clone();
        let mut cseq = c0.clone();
        gemm_par(nt, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut cpar, ldc);
        gemm(m, n, k, alpha, &a, lda, &b, ldb, beta, &mut cseq, ldc);
        for j in 0..n {
            for i in 0..m {
                let (x, y) = (cpar[i + j * ldc], cseq[i + j * ldc]);
                prop_assert!((x - y).abs() < tolerance(k),
                    "C[{i},{j}] = {x} (par, nt={nt}) vs {y} (seq)");
            }
        }
        return Ok(());
    }

    #[test]
    fn axpy_reference_agrees_with_packed(case in arb_case()) {
        let Case { m, n, k, lda, ldb, ldc, alpha, beta, a, b, c0 } = case;
        let mut cpacked = c0.clone();
        let mut caxpy = c0;
        gemm(m, n, k, alpha, &a, lda, &b, ldb, beta, &mut cpacked, ldc);
        gemm_axpy_ref(m, n, k, alpha, &a, lda, &b, ldb, beta, &mut caxpy, ldc);
        for j in 0..n {
            for i in 0..m {
                let (x, y) = (cpacked[i + j * ldc], caxpy[i + j * ldc]);
                prop_assert!((x - y).abs() < tolerance(k), "C[{i},{j}] = {x} vs axpy {y}");
            }
        }
        return Ok(());
    }
}
