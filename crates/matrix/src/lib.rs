//! Dense column-major linear-algebra kernels built from scratch.
//!
//! This crate is the BLAS-like substrate of the workspace: a column-major
//! [`Matrix`] container plus free functions operating on `(slice, leading
//! dimension)` pairs in the LAPACK style, so sub-matrices can be addressed
//! without a dedicated view type. Everything is pure safe Rust; the parallel
//! GEMM uses scoped threads over disjoint column panels.

mod blas;
mod check;
mod matrix;
mod merge;
pub mod util;

pub use blas::{axpy, dot, gemm, gemm_par, gemv, nrm2, scal};
pub use check::{orthogonality_error, residual_error, symmetric_residual_error};
pub use matrix::Matrix;
pub use merge::merge_perm;
