//! Dense column-major linear-algebra kernels built from scratch.
//!
//! This crate is the BLAS-like substrate of the workspace: a column-major
//! [`Matrix`] container plus free functions operating on `(slice, leading
//! dimension)` pairs in the LAPACK style, so sub-matrices can be addressed
//! without a dedicated view type. The GEMM is a packed, register-tiled
//! implementation ([`kernel`]) with per-thread recycled packing buffers
//! ([`workspace_growth_events`] exposes the allocation counter); the
//! parallel GEMM runs 2-D C tiles on a persistent worker pool ([`pool`])
//! instead of spawning threads per call.

mod blas;
mod check;
pub mod failpoints;
mod kernel;
pub mod lowrank;
mod matrix;
mod merge;
pub mod metrics;
mod pool;
pub mod simd;
pub mod util;
mod workspace;

pub use blas::{axpy, dot, gemm, gemm_axpy_ref, gemm_par, gemv, nrm2, scal};
pub use check::{orthogonality_error, residual_error, symmetric_residual_error};
pub use kernel::{KC, MC, MR, MR_SMALL, NC, NR};
pub use lowrank::{set_update_policy, update_policy, UpdatePolicy};
pub use matrix::Matrix;
pub use merge::merge_perm;
pub use pool::pool_workers;
pub use simd::{simd_level, SimdLevel};
pub use workspace::workspace_growth_events;
