//! Shared runtime SIMD dispatch for the workspace's vectorized kernels.
//!
//! Every crate that compiles a kernel body at several vector widths
//! (`dcst-matrix`'s GEMM micro-kernels, `dcst-secular`'s secular-equation
//! sweeps) selects the variant through this single detector, so the whole
//! workspace agrees on one answer and one override knob:
//!
//! * detection runs once (`is_x86_feature_detected!`) and is cached in an
//!   atomic — dispatch on a hot path costs one relaxed load;
//! * setting the environment variable `DCST_FORCE_SCALAR=1` (read at first
//!   query) pins the level to [`SimdLevel::Scalar`], which CI uses to keep
//!   the portable fallback paths built and tested on every push.
//!
//! Non-x86 targets always report `Scalar`; the scalar kernel bodies are the
//! portable implementations (and the test oracles), not a degraded mode.

use std::sync::atomic::{AtomicU8, Ordering};

/// Vector ISA level selected for this process, widest first.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum SimdLevel {
    /// Portable scalar/autovectorized code (also the forced-fallback mode).
    Scalar = 1,
    /// 256-bit AVX2 + FMA.
    Avx2 = 2,
    /// 512-bit AVX-512F + FMA.
    Avx512 = 3,
}

/// 0 = not yet detected.
static LEVEL: AtomicU8 = AtomicU8::new(0);

#[cold]
fn detect() -> u8 {
    if std::env::var_os("DCST_FORCE_SCALAR").is_some_and(|v| v != "0" && !v.is_empty()) {
        return SimdLevel::Scalar as u8;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdLevel::Avx512 as u8;
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdLevel::Avx2 as u8;
        }
    }
    SimdLevel::Scalar as u8
}

/// The SIMD level all dispatched kernels in this process use. Detected on
/// first call (honouring `DCST_FORCE_SCALAR`), then cached.
pub fn simd_level() -> SimdLevel {
    let mut level = LEVEL.load(Ordering::Relaxed);
    if level == 0 {
        level = detect();
        LEVEL.store(level, Ordering::Relaxed);
    }
    match level {
        3 => SimdLevel::Avx512,
        2 => SimdLevel::Avx2,
        _ => SimdLevel::Scalar,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_is_stable_across_calls() {
        let a = simd_level();
        let b = simd_level();
        assert_eq!(a, b);
    }

    #[test]
    fn level_matches_cpu_features() {
        let level = simd_level();
        if std::env::var_os("DCST_FORCE_SCALAR").is_some_and(|v| v != "0" && !v.is_empty()) {
            assert_eq!(level, SimdLevel::Scalar);
            return;
        }
        #[cfg(target_arch = "x86_64")]
        {
            let fma = std::arch::is_x86_feature_detected!("fma");
            if std::arch::is_x86_feature_detected!("avx512f") && fma {
                assert_eq!(level, SimdLevel::Avx512);
            } else if std::arch::is_x86_feature_detected!("avx2") && fma {
                assert_eq!(level, SimdLevel::Avx2);
            } else {
                assert_eq!(level, SimdLevel::Scalar);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(level, SimdLevel::Scalar);
    }
}
