//! Per-thread packing workspace for the blocked GEMM.
//!
//! Each thread that executes GEMM work owns one [`Workspace`] holding the
//! A-panel (`MC x KC`) and B-panel (`KC x NC`) packing buffers. Buffers grow
//! monotonically and are never shrunk, so after a warm-up call at a given
//! problem size the steady state performs **zero heap allocation** inside
//! GEMM. Every actual growth bumps a global counter, which the allocation
//! regression test snapshots across repeated calls.

use std::cell::{Cell, RefCell};

thread_local! {
    /// Growth events of the *calling thread's* workspace. Thread-local so
    /// unrelated threads (pool workers, parallel tests) cannot perturb an
    /// allocation regression test's snapshot.
    static GROWTH_EVENTS: Cell<usize> = const { Cell::new(0) };
}

/// Number of workspace buffer growth events (allocations or reallocations)
/// performed so far by the calling thread. Monotone; only meaningful as a
/// delta: snapshot before and after a repeated GEMM call — an unchanged
/// count proves the steady state allocates nothing.
pub fn workspace_growth_events() -> usize {
    GROWTH_EVENTS.with(|c| c.get())
}

/// Reusable packing buffers for one thread.
#[derive(Default)]
pub struct Workspace {
    a_pack: Vec<f64>,
    b_pack: Vec<f64>,
}

impl Workspace {
    /// Mutable views of the A- and B-packing buffers, grown (never shrunk)
    /// to at least `a_len` / `b_len` elements.
    pub fn panels(&mut self, a_len: usize, b_len: usize) -> (&mut [f64], &mut [f64]) {
        grow(&mut self.a_pack, a_len);
        grow(&mut self.b_pack, b_len);
        (&mut self.a_pack[..a_len], &mut self.b_pack[..b_len])
    }
}

fn grow(buf: &mut Vec<f64>, len: usize) {
    if buf.len() < len {
        GROWTH_EVENTS.with(|c| c.set(c.get() + 1));
        buf.resize(len, 0.0);
    }
}

thread_local! {
    static WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::default());
}

/// Run `f` with this thread's workspace.
///
/// GEMM never calls itself reentrantly from packing or micro-kernel code,
/// so the `RefCell` borrow cannot conflict.
pub(crate) fn with_workspace<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_grow_once_per_high_water_mark() {
        let t = std::thread::spawn(|| {
            let before = workspace_growth_events();
            with_workspace(|ws| {
                ws.panels(100, 200);
            });
            let after_first = workspace_growth_events();
            assert!(after_first >= before + 2, "first use allocates both panels");
            for _ in 0..10 {
                with_workspace(|ws| {
                    let (a, b) = ws.panels(100, 200);
                    a[99] = 1.0;
                    b[199] = 1.0;
                });
            }
            assert_eq!(
                workspace_growth_events(),
                after_first,
                "steady state allocates nothing"
            );
            with_workspace(|ws| {
                ws.panels(101, 200);
            });
            assert_eq!(workspace_growth_events(), after_first + 1, "only A grew");
        });
        t.join().unwrap();
    }
}
