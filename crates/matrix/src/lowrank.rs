//! Low-rank tile compression and the structured GEMM it feeds.
//!
//! The merge phase's eigenvector update multiplies the accumulated basis
//! `Q` by the secular eigenvector matrix `X`. In ascending-pole order `X`
//! is Cauchy-like — `x̃_ij = ẑ_i / (d_i − λ_j) / ‖·‖_j` — so its
//! off-diagonal blocks have rapidly decaying singular values and admit a
//! low-rank factorization `A ≈ U Vᵀ` at any fixed tolerance. This module
//! provides the pieces that are pure dense linear algebra and know nothing
//! about the secular problem:
//!
//! * [`aca`] — adaptive cross approximation with partial pivoting: builds
//!   `U Vᵀ` one rank-1 cross at a time reading only O((m+n)·r) entries of
//!   the block through a caller-supplied entry closure;
//! * [`StructuredMatrix`] — a flat list of disjoint [`Tile`]s (dense or
//!   low-rank) covering a logical `rows × cols` operand;
//! * [`gemm_structured`] — `C(:, jrange) = Q · S(:, jrange)`, routing dense
//!   tiles through the packed GEMM and low-rank tiles through a skinny
//!   GEMM against the precomputed `Q·U` basis product;
//! * [`update_policy`] — the process-wide dense/structured switch with the
//!   `DCST_FORCE_DENSE` / `DCST_FORCE_STRUCTURED` escape hatches
//!   (mirroring `DCST_FORCE_SCALAR`).
//!
//! Rank estimation, block partitioning and the accuracy-budget tolerance
//! live in `dcst-secular`, which owns the Cauchy-like entry generator.

#![allow(clippy::too_many_arguments)]

use crate::blas::gemm_par;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which eigenvector-update path the merge phase may take.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UpdatePolicy {
    /// Rank-estimate each merge and pick the cheaper path (the default).
    Auto,
    /// Always run the dense two-GEMM oracle (`DCST_FORCE_DENSE=1`).
    ForceDense,
    /// Always attempt the structured path when the merge is large enough
    /// to partition (`DCST_FORCE_STRUCTURED=1`); individual blocks that
    /// refuse to compress still fall back to dense tiles.
    ForceStructured,
}

/// 0 = not yet read from the environment.
static POLICY: AtomicU8 = AtomicU8::new(0);

#[cold]
fn detect_policy() -> u8 {
    let set = |name: &str| std::env::var_os(name).is_some_and(|v| v != "0" && !v.is_empty());
    // Dense wins if both are set: it is the pinned oracle.
    if set("DCST_FORCE_DENSE") {
        UpdatePolicy::ForceDense as u8 + 1
    } else if set("DCST_FORCE_STRUCTURED") {
        UpdatePolicy::ForceStructured as u8 + 1
    } else {
        UpdatePolicy::Auto as u8 + 1
    }
}

/// The eigenvector-update policy for this process. Read from the
/// environment on first call, then cached; [`set_update_policy`] overrides
/// it at any time (benches toggle paths inside one process).
pub fn update_policy() -> UpdatePolicy {
    let mut p = POLICY.load(Ordering::Relaxed);
    if p == 0 {
        p = detect_policy();
        POLICY.store(p, Ordering::Relaxed);
    }
    match p - 1 {
        x if x == UpdatePolicy::ForceDense as u8 => UpdatePolicy::ForceDense,
        x if x == UpdatePolicy::ForceStructured as u8 => UpdatePolicy::ForceStructured,
        _ => UpdatePolicy::Auto,
    }
}

/// Pin the update policy for this process, overriding the environment.
pub fn set_update_policy(p: UpdatePolicy) {
    POLICY.store(p as u8 + 1, Ordering::Relaxed);
}

/// A rank-`r` factorization `A ≈ U Vᵀ` of an `m × n` block.
#[derive(Clone, Debug)]
pub struct LowRank {
    /// Achieved rank (0 for a numerically zero block).
    pub rank: usize,
    /// `m × rank`, column-major with leading dimension `m`.
    pub u: Vec<f64>,
    /// `rank × n`, column-major with leading dimension `rank`, so the
    /// column sub-range `j0..j1` is the contiguous slice
    /// `vt[j0*rank..j1*rank]`.
    pub vt: Vec<f64>,
}

/// Adaptive cross approximation with partial pivoting.
///
/// Reads the block only through `entry(i, j)` and returns `Some(LowRank)`
/// with `‖A − U Vᵀ‖_F ≲ rel_tol · ‖A‖_F` (the Frobenius norm is estimated
/// on the fly from the accumulated crosses), or `None` if `max_rank`
/// crosses did not reach the tolerance — the caller then keeps the block
/// dense. Cost: O((m+n)·r) entry evaluations and O((m+n)·r²) flops.
pub fn aca(
    rows: usize,
    cols: usize,
    entry: &mut dyn FnMut(usize, usize) -> f64,
    rel_tol: f64,
    max_rank: usize,
) -> Option<LowRank> {
    let empty = LowRank {
        rank: 0,
        u: Vec::new(),
        vt: Vec::new(),
    };
    if rows == 0 || cols == 0 {
        return Some(empty);
    }
    let max_rank = max_rank.min(rows).min(cols);
    // Crosses stored flat and rank-major (cross t = us[t·rows..], vs[t·cols..])
    // so the residual updates below run as contiguous axpy/dot sweeps the
    // compiler can vectorize, instead of strided walks over per-cross Vecs.
    let mut us: Vec<f64> = Vec::new();
    let mut vs: Vec<f64> = Vec::new();
    let mut rank = 0usize;
    let mut row_used = vec![false; rows];
    let mut frob2 = 0.0f64; // ‖UVᵀ‖_F² accumulated cross by cross
    let mut pivot = 0usize;
    let mut row = vec![0.0f64; cols];
    loop {
        // Residual row at the pivot: r_j = a(i*, j) − Σ_t u_t[i*] v_t[j].
        // A numerically zero residual row does not prove convergence (the
        // row may just be outside the block's column space), so retry a
        // bounded number of other unused rows before concluding.
        let mut retries = rows.min(32);
        let jmax = loop {
            for (j, r) in row.iter_mut().enumerate() {
                *r = entry(pivot, j);
            }
            for t in 0..rank {
                let coef = us[t * rows + pivot];
                if coef != 0.0 {
                    for (r, &v) in row.iter_mut().zip(&vs[t * cols..(t + 1) * cols]) {
                        *r -= coef * v;
                    }
                }
            }
            let jmax = (0..cols).max_by(|&a, &b| row[a].abs().total_cmp(&row[b].abs()));
            match jmax {
                Some(j) if row[j] != 0.0 => break Some(j),
                _ => {
                    row_used[pivot] = true;
                    retries -= 1;
                    match row_used.iter().position(|&u| !u) {
                        Some(next) if retries > 0 => pivot = next,
                        _ => break None,
                    }
                }
            }
        };
        let Some(jmax) = jmax else {
            // Every probed row is in the span of the crosses so far.
            break;
        };
        if rank == max_rank {
            return None;
        }
        // New cross: v = row / pivot entry (so v[jmax] = 1), u = residual
        // column at jmax.
        let piv = row[jmax];
        let v_new: Vec<f64> = row.iter().map(|&r| r / piv).collect();
        let mut u_new = vec![0.0f64; rows];
        for (i, u) in u_new.iter_mut().enumerate() {
            *u = entry(i, jmax);
        }
        for t in 0..rank {
            let coef = vs[t * cols + jmax];
            if coef != 0.0 {
                for (u, &w) in u_new.iter_mut().zip(&us[t * rows..(t + 1) * rows]) {
                    *u -= coef * w;
                }
            }
        }
        row_used[pivot] = true;
        // Frobenius bookkeeping: ‖S + uvᵀ‖² = ‖S‖² + ‖u‖²‖v‖² + 2Σ(u·uₜ)(v·vₜ).
        let unrm2: f64 = u_new.iter().map(|x| x * x).sum();
        let vnrm2: f64 = v_new.iter().map(|x| x * x).sum();
        let mut cross_term = 0.0;
        for t in 0..rank {
            let uu: f64 = u_new
                .iter()
                .zip(&us[t * rows..(t + 1) * rows])
                .map(|(a, b)| a * b)
                .sum();
            let vv: f64 = v_new
                .iter()
                .zip(&vs[t * cols..(t + 1) * cols])
                .map(|(a, b)| a * b)
                .sum();
            cross_term += uu * vv;
        }
        frob2 = (frob2 + unrm2 * vnrm2 + 2.0 * cross_term).max(0.0);
        let step = (unrm2 * vnrm2).sqrt();
        us.extend_from_slice(&u_new);
        vs.extend_from_slice(&v_new);
        rank += 1;
        if step <= rel_tol * frob2.sqrt() {
            break;
        }
        // Next pivot row: largest residual-column magnitude over unused rows.
        let last_u = &us[(rank - 1) * rows..rank * rows];
        match (0..rows)
            .filter(|&i| !row_used[i])
            .max_by(|&a, &b| last_u[a].abs().total_cmp(&last_u[b].abs()))
        {
            Some(next) => pivot = next,
            None => break,
        }
    }
    // Pack the crosses into column-major factors: `us` is already the
    // column-major U; Vᵀ needs the transpose of `vs`.
    let mut vt = vec![0.0f64; rank * cols];
    for t in 0..rank {
        for (j, &v) in vs[t * cols..(t + 1) * cols].iter().enumerate() {
            vt[j * rank + t] = v;
        }
    }
    Some(LowRank { rank, u: us, vt })
}

/// Payload of one tile of a [`StructuredMatrix`].
#[derive(Clone, Debug)]
pub enum TileKind {
    /// Materialized `(r1−r0) × (c1−c0)` block, column-major, leading
    /// dimension `r1−r0`.
    Dense(Vec<f64>),
    /// Compressed block.
    LowRank(LowRank),
}

/// One disjoint block `[r0, r1) × [c0, c1)` of the structured operand.
#[derive(Clone, Debug)]
pub struct Tile {
    pub r0: usize,
    pub r1: usize,
    pub c0: usize,
    pub c1: usize,
    pub kind: TileKind,
}

/// A `rows × cols` matrix stored as a flat list of disjoint tiles that
/// together cover every entry.
#[derive(Clone, Debug, Default)]
pub struct StructuredMatrix {
    pub rows: usize,
    pub cols: usize,
    pub tiles: Vec<Tile>,
}

impl StructuredMatrix {
    /// Number of low-rank tiles.
    pub fn compressed_tiles(&self) -> usize {
        self.tiles
            .iter()
            .filter(|t| matches!(t.kind, TileKind::LowRank(_)))
            .count()
    }

    /// Sum of achieved ranks over the low-rank tiles.
    pub fn total_rank(&self) -> usize {
        self.tiles
            .iter()
            .map(|t| match &t.kind {
                TileKind::LowRank(lr) => lr.rank,
                TileKind::Dense(_) => 0,
            })
            .sum()
    }

    /// Flops of `Q · S` for a `m × rows` left operand, including the
    /// per-tile `Q·U` basis products.
    pub fn multiply_flops(&self, m: usize) -> u64 {
        let m = m as u64;
        self.tiles
            .iter()
            .map(|t| {
                let (tr, tc) = ((t.r1 - t.r0) as u64, (t.c1 - t.c0) as u64);
                match &t.kind {
                    TileKind::Dense(_) => 2 * m * tr * tc,
                    TileKind::LowRank(lr) => 2 * m * (lr.rank as u64) * (tr + tc),
                }
            })
            .sum()
    }
}

/// Precompute the basis product `Q(:, r0..r1) · U` (`m × rank`) for one
/// low-rank tile; returns an empty vector for dense or rank-0 tiles. `q`
/// is `m × sm.rows` column-major with leading dimension `ldq`.
pub fn structured_basis(threads: usize, m: usize, q: &[f64], ldq: usize, tile: &Tile) -> Vec<f64> {
    let TileKind::LowRank(lr) = &tile.kind else {
        return Vec::new();
    };
    if lr.rank == 0 || m == 0 {
        return Vec::new();
    }
    let tr = tile.r1 - tile.r0;
    let mut qu = vec![0.0f64; m * lr.rank];
    gemm_par(
        threads,
        m,
        lr.rank,
        tr,
        1.0,
        &q[tile.r0 * ldq..],
        ldq,
        &lr.u,
        tr,
        0.0,
        &mut qu,
        m,
    );
    qu
}

/// `C(:, 0..jrange.len()) = Q · S(:, jrange)` for a tiled operand.
///
/// `q` is `m × sm.rows` (ld `ldq`); `c` receives the `m × jrange.len()`
/// result (ld `ldc`), column 0 of `c` corresponding to structured column
/// `jrange.start`. `qu` must hold one entry per tile of `sm`, the
/// precomputed [`structured_basis`] product (empty slices for dense
/// tiles). Dense tiles run through the packed GEMM; low-rank tiles through
/// one skinny GEMM against their basis product.
pub fn gemm_structured(
    threads: usize,
    m: usize,
    q: &[f64],
    ldq: usize,
    sm: &StructuredMatrix,
    qu: &[&[f64]],
    jrange: std::ops::Range<usize>,
    c: &mut [f64],
    ldc: usize,
) {
    debug_assert_eq!(qu.len(), sm.tiles.len());
    debug_assert!(jrange.end <= sm.cols);
    let ncols = jrange.len();
    if m == 0 || ncols == 0 {
        return;
    }
    for j in 0..ncols {
        c[j * ldc..j * ldc + m].fill(0.0);
    }
    for (tile, &qu_t) in sm.tiles.iter().zip(qu) {
        let j0 = tile.c0.max(jrange.start);
        let j1 = tile.c1.min(jrange.end);
        if j0 >= j1 {
            continue;
        }
        let jc = j1 - j0;
        let tr = tile.r1 - tile.r0;
        let cpanel = &mut c[(j0 - jrange.start) * ldc..];
        match &tile.kind {
            TileKind::Dense(data) => {
                if tr == 0 {
                    continue;
                }
                gemm_par(
                    threads,
                    m,
                    jc,
                    tr,
                    1.0,
                    &q[tile.r0 * ldq..],
                    ldq,
                    &data[(j0 - tile.c0) * tr..],
                    tr,
                    1.0,
                    cpanel,
                    ldc,
                );
            }
            TileKind::LowRank(lr) => {
                if lr.rank == 0 {
                    continue;
                }
                debug_assert_eq!(qu_t.len(), m * lr.rank);
                gemm_par(
                    threads,
                    m,
                    jc,
                    lr.rank,
                    1.0,
                    qu_t,
                    m,
                    &lr.vt[(j0 - tile.c0) * lr.rank..],
                    lr.rank,
                    1.0,
                    cpanel,
                    ldc,
                );
            }
        }
    }
}

/// Materialize a dense tile from an entry closure (helper for tile
/// builders and for ACA fallback).
pub fn materialize(
    rows: usize,
    cols: usize,
    entry: &mut dyn FnMut(usize, usize) -> f64,
) -> Vec<f64> {
    let mut data = vec![0.0f64; rows * cols];
    for j in 0..cols {
        for i in 0..rows {
            data[j * rows + i] = entry(i, j);
        }
    }
    data
}

/// Dense reference multiply for tests: reconstruct `S` tile by tile and
/// multiply densely.
#[doc(hidden)]
pub fn reconstruct(sm: &StructuredMatrix) -> Vec<f64> {
    let mut a = vec![0.0f64; sm.rows * sm.cols];
    for tile in &sm.tiles {
        let tr = tile.r1 - tile.r0;
        for j in tile.c0..tile.c1 {
            for i in tile.r0..tile.r1 {
                let v = match &tile.kind {
                    TileKind::Dense(d) => d[(j - tile.c0) * tr + (i - tile.r0)],
                    TileKind::LowRank(lr) => (0..lr.rank)
                        .map(|t| lr.u[t * tr + (i - tile.r0)] * lr.vt[(j - tile.c0) * lr.rank + t])
                        .sum(),
                };
                a[j * sm.rows + i] = v;
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::gemm;

    fn cauchy(i: usize, j: usize) -> f64 {
        1.0 / (1.0 + (i as f64 - j as f64).abs() + i as f64 + j as f64)
    }

    #[test]
    fn aca_recovers_exact_low_rank() {
        // A = x yᵀ + w zᵀ has rank 2; ACA must terminate at rank ≤ 3 and
        // reproduce every entry to near machine precision.
        let (m, n) = (40, 31);
        let x: Vec<f64> = (0..m).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..n).map(|j| (j as f64 * 0.11).cos()).collect();
        let w: Vec<f64> = (0..m).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let z: Vec<f64> = (0..n).map(|j| (j as f64).sqrt()).collect();
        let mut entry = |i: usize, j: usize| x[i] * y[j] + w[i] * z[j];
        let lr = aca(m, n, &mut entry, 1e-13, 10).expect("rank-2 block must compress");
        assert!(lr.rank >= 2 && lr.rank <= 3, "rank {}", lr.rank);
        for j in 0..n {
            for i in 0..m {
                let got: f64 = (0..lr.rank)
                    .map(|t| lr.u[t * m + i] * lr.vt[j * lr.rank + t])
                    .sum();
                assert!((got - entry(i, j)).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn aca_cauchy_block_compresses_below_full_rank() {
        let (m, n) = (64, 64);
        let mut entry = |i: usize, j: usize| cauchy(i, j + n); // off-diagonal shift
        let lr = aca(m, n, &mut entry, 1e-12, 32).expect("smooth Cauchy block compresses");
        assert!(lr.rank < 20, "rank {}", lr.rank);
        let mut worst = 0.0f64;
        for j in 0..n {
            for i in 0..m {
                let got: f64 = (0..lr.rank)
                    .map(|t| lr.u[t * m + i] * lr.vt[j * lr.rank + t])
                    .sum();
                worst = worst.max((got - entry(i, j)).abs());
            }
        }
        assert!(worst < 1e-10, "worst entry error {worst}");
    }

    #[test]
    fn aca_zero_block_is_rank_zero() {
        let lr = aca(10, 8, &mut |_, _| 0.0, 1e-12, 5).expect("zero block");
        assert_eq!(lr.rank, 0);
    }

    #[test]
    fn aca_full_rank_block_hits_cap() {
        // An identity-like block has no low-rank structure: the cap trips
        // and the caller falls back to a dense tile.
        let n = 16;
        let mut entry = |i: usize, j: usize| if i == j { 1.0 } else { 0.0 };
        assert!(aca(n, n, &mut entry, 1e-12, n / 2).is_none());
    }

    #[test]
    fn structured_multiply_matches_dense() {
        // 2x2 tiling of a 30x30 Cauchy-like matrix: diagonal tiles dense,
        // off-diagonal compressed; Q·S must match the dense product.
        let k = 30;
        let half = k / 2;
        let mut entry_full = |i: usize, j: usize| cauchy(i, j);
        let mut tiles = Vec::new();
        for (r0, r1, c0, c1) in [(0, half, 0, half), (half, k, half, k)] {
            let mut e = |i: usize, j: usize| cauchy(i + r0, j + c0);
            tiles.push(Tile {
                r0,
                r1,
                c0,
                c1,
                kind: TileKind::Dense(materialize(r1 - r0, c1 - c0, &mut e)),
            });
        }
        for (r0, r1, c0, c1) in [(0, half, half, k), (half, k, 0, half)] {
            let mut e = |i: usize, j: usize| cauchy(i + r0, j + c0);
            let lr = aca(r1 - r0, c1 - c0, &mut e, 1e-13, half).expect("compresses");
            assert!(lr.rank > 0 && lr.rank < half);
            tiles.push(Tile {
                r0,
                r1,
                c0,
                c1,
                kind: TileKind::LowRank(lr),
            });
        }
        let sm = StructuredMatrix {
            rows: k,
            cols: k,
            tiles,
        };
        let m = 25;
        let q: Vec<f64> = (0..m * k)
            .map(|t| ((t * 7919 % 101) as f64 - 50.0) / 50.0)
            .collect();
        let qu: Vec<Vec<f64>> = sm
            .tiles
            .iter()
            .map(|t| structured_basis(1, m, &q, m, t))
            .collect();
        let qu_refs: Vec<&[f64]> = qu.iter().map(|v| v.as_slice()).collect();
        // Dense reference.
        let a = materialize(k, k, &mut entry_full);
        let mut cref = vec![0.0f64; m * k];
        gemm(m, k, k, 1.0, &q, m, &a, k, 0.0, &mut cref, m);
        // Full range and a strict sub-range.
        for jrange in [0..k, 5..k - 3] {
            let ncols = jrange.len();
            let mut c = vec![f64::NAN; m * ncols];
            gemm_structured(1, m, &q, m, &sm, &qu_refs, jrange.clone(), &mut c, m);
            for j in 0..ncols {
                for i in 0..m {
                    let want = cref[(jrange.start + j) * m + i];
                    let got = c[j * m + i];
                    assert!(
                        (got - want).abs() < 1e-9,
                        "col {j} row {i}: {got} vs {want}"
                    );
                }
            }
        }
        assert!(sm.multiply_flops(m) < 2 * (m * k * k) as u64);
    }

    #[test]
    fn policy_setter_overrides() {
        let prev = update_policy();
        set_update_policy(UpdatePolicy::ForceDense);
        assert_eq!(update_policy(), UpdatePolicy::ForceDense);
        set_update_policy(UpdatePolicy::Auto);
        assert_eq!(update_policy(), UpdatePolicy::Auto);
        set_update_policy(prev);
    }
}
