//! Small numerical utilities shared across the workspace.

/// `sqrt(x^2 + y^2)` without spurious overflow/underflow (`dlapy2`).
#[inline]
pub fn lapy2(x: f64, y: f64) -> f64 {
    let (a, b) = (x.abs(), y.abs());
    let (hi, lo) = if a > b { (a, b) } else { (b, a) };
    if hi == 0.0 {
        0.0
    } else {
        let r = lo / hi;
        hi * (1.0 + r * r).sqrt()
    }
}

/// Unit roundoff used in LAPACK-style tolerances: `dlamch('E')`,
/// i.e. half the distance from 1.0 to the next float.
pub const EPS: f64 = f64::EPSILON / 2.0;

/// Smallest safe positive number whose reciprocal does not overflow
/// (`dlamch('S')` in spirit).
pub const SAFE_MIN: f64 = f64::MIN_POSITIVE;

/// Sign transfer: |a| with the sign of b (Fortran `SIGN`).
#[inline]
pub fn sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lapy2_matches_hypot() {
        for &(x, y) in &[
            (3.0, 4.0),
            (-3.0, 4.0),
            (0.0, 0.0),
            (1e300, 1e300),
            (1e-320, 1e-320),
        ] {
            let got = lapy2(x, y);
            let want = f64::hypot(x, y);
            assert!(
                (got - want).abs() <= 1e-10 * want.max(1e-300),
                "{got} vs {want}"
            );
        }
    }

    #[test]
    fn sign_transfer() {
        assert_eq!(sign(3.0, -2.0), -3.0);
        assert_eq!(sign(-3.0, 2.0), 3.0);
        assert_eq!(sign(3.0, 0.0), 3.0);
    }

    #[test]
    fn eps_is_half_ulp() {
        assert_eq!(EPS * 2.0, f64::EPSILON);
        let one = std::hint::black_box(1.0f64);
        assert!(one + f64::EPSILON > one);
    }
}
