//! Feature-gated fault-injection sites for the numerical kernels.
//!
//! A *failpoint* is a named site inside a kernel (`steqr`, `laed4`, `gemm`,
//! plus the NaN-corruption variants `nan-steqr` / `nan-gemm`) that can be
//! armed to fire on its N-th hit, either from the environment
//! (`DCST_FAIL=laed4:3` — fire on the third LAED4 root solve;
//! `DCST_FAIL=gemm:2+` — fire on every hit from the second on; multiple
//! specs comma-separated) or programmatically from tests via [`arm`] /
//! [`exclusive`]. When the `failpoints` feature is off, every function here
//! compiles to a no-op and [`fire`] is a constant `false`, so call sites
//! need no `cfg` of their own.
//!
//! The registry is process-global while Rust tests in one binary run on
//! parallel threads, so arming tests must serialize against anything whose
//! behaviour an armed site could corrupt: arm through [`exclusive`] (takes
//! a write lock, disarms on drop) and have fragile-but-unarmed tests hold a
//! [`quiet`] read guard.

#[cfg(feature = "failpoints")]
mod imp {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Once, RwLock, RwLockReadGuard, RwLockWriteGuard};

    struct Site {
        name: &'static str,
        /// Times this site has been reached (armed or not).
        hits: AtomicUsize,
        /// 1-based hit index to fire on; 0 = disarmed.
        trigger: AtomicUsize,
        /// Fire on *every* hit >= trigger (the `N+` spec) instead of once.
        every: AtomicBool,
        /// Times this site has actually fired.
        fired: AtomicUsize,
    }

    const fn site(name: &'static str) -> Site {
        Site {
            name,
            hits: AtomicUsize::new(0),
            trigger: AtomicUsize::new(0),
            every: AtomicBool::new(false),
            fired: AtomicUsize::new(0),
        }
    }

    static SITES: [Site; 5] = [
        site("steqr"),
        site("laed4"),
        site("gemm"),
        site("nan-steqr"),
        site("nan-gemm"),
    ];

    static ENV_INIT: Once = Once::new();
    static REGISTRY_LOCK: RwLock<()> = RwLock::new(());

    fn lookup(name: &str) -> &'static Site {
        SITES
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("unknown failpoint site '{name}'"))
    }

    fn init_from_env() {
        ENV_INIT.call_once(|| {
            let Ok(spec) = std::env::var("DCST_FAIL") else {
                return;
            };
            for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
                let Some((name, count)) = part.trim().split_once(':') else {
                    panic!("malformed DCST_FAIL spec '{part}' (want site:N or site:N+)");
                };
                arm(name, count);
            }
        });
    }

    /// Hit the named site. Returns true when the site is armed and this hit
    /// matches its trigger — the caller then injects its failure.
    pub fn fire(name: &str) -> bool {
        init_from_env();
        let s = lookup(name);
        let hit = s.hits.fetch_add(1, Ordering::SeqCst) + 1;
        let trigger = s.trigger.load(Ordering::SeqCst);
        if trigger == 0 {
            return false;
        }
        let fire = if s.every.load(Ordering::SeqCst) {
            hit >= trigger
        } else {
            hit == trigger
        };
        if fire {
            s.fired.fetch_add(1, Ordering::SeqCst);
        }
        fire
    }

    /// Hit a NaN-corruption site: when it fires, poison `buf[0]` so the
    /// corruption propagates through downstream arithmetic exactly like a
    /// real mid-computation breakdown would.
    pub fn poke_nan(name: &str, buf: &mut [f64]) {
        if fire(name) {
            if let Some(x) = buf.first_mut() {
                *x = f64::NAN;
            }
        }
    }

    /// Arm `name` with spec `"N"` (fire once, on the N-th hit) or `"N+"`
    /// (fire on every hit from the N-th on). Resets the site's counters.
    pub fn arm(name: &str, spec: &str) {
        let s = lookup(name);
        let (count, every) = match spec.strip_suffix('+') {
            Some(n) => (n, true),
            None => (spec, false),
        };
        let count: usize = count
            .parse()
            .unwrap_or_else(|_| panic!("bad failpoint trigger '{spec}' for site '{name}'"));
        assert!(count > 0, "failpoint trigger is 1-based");
        s.hits.store(0, Ordering::SeqCst);
        s.fired.store(0, Ordering::SeqCst);
        s.every.store(every, Ordering::SeqCst);
        s.trigger.store(count, Ordering::SeqCst);
    }

    /// Disarm every site and zero all counters.
    pub fn disarm_all() {
        for s in &SITES {
            s.trigger.store(0, Ordering::SeqCst);
            s.every.store(false, Ordering::SeqCst);
            s.hits.store(0, Ordering::SeqCst);
            s.fired.store(0, Ordering::SeqCst);
        }
    }

    /// Times `name` has actually fired since it was last armed.
    pub fn fired(name: &str) -> usize {
        lookup(name).fired.load(Ordering::SeqCst)
    }

    /// Times `name` has been reached since it was last armed/reset.
    pub fn hits(name: &str) -> usize {
        lookup(name).hits.load(Ordering::SeqCst)
    }

    /// Exclusive-arming guard: holds the registry write lock with `name`
    /// armed; disarms everything when dropped. Tests that arm sites MUST go
    /// through this so parallel test threads never observe a stray arm.
    pub struct Armed {
        _guard: RwLockWriteGuard<'static, ()>,
    }

    impl Drop for Armed {
        fn drop(&mut self) {
            disarm_all();
        }
    }

    /// Arm `name` with `spec` under the registry write lock.
    pub fn exclusive(name: &str, spec: &str) -> Armed {
        let guard = REGISTRY_LOCK.write().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        arm(name, spec);
        Armed { _guard: guard }
    }

    /// Shared no-failpoints guard for tests that would be corrupted by a
    /// concurrently armed site: blocks while any [`exclusive`] arm is live.
    pub struct Quiet {
        _guard: RwLockReadGuard<'static, ()>,
    }

    /// Take a read guard on the registry (all sites disarmed while held).
    pub fn quiet() -> Quiet {
        Quiet {
            _guard: REGISTRY_LOCK.read().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    //! No-op stand-ins: the optimizer erases every call site.

    /// Always false when the `failpoints` feature is off.
    #[inline(always)]
    pub fn fire(_name: &str) -> bool {
        false
    }

    /// No-op when the `failpoints` feature is off.
    #[inline(always)]
    pub fn poke_nan(_name: &str, _buf: &mut [f64]) {}

    /// No-op when the `failpoints` feature is off.
    #[inline(always)]
    pub fn arm(_name: &str, _spec: &str) {}

    /// No-op when the `failpoints` feature is off.
    #[inline(always)]
    pub fn disarm_all() {}

    /// Always 0 when the `failpoints` feature is off.
    #[inline(always)]
    pub fn fired(_name: &str) -> usize {
        0
    }

    /// Always 0 when the `failpoints` feature is off.
    #[inline(always)]
    pub fn hits(_name: &str) -> usize {
        0
    }

    /// Zero-sized stand-in for the exclusive-arming guard.
    pub struct Armed;

    /// No-op guard when the `failpoints` feature is off.
    #[inline(always)]
    pub fn exclusive(_name: &str, _spec: &str) -> Armed {
        Armed
    }

    /// Zero-sized stand-in for the quiet guard.
    pub struct Quiet;

    /// No-op guard when the `failpoints` feature is off.
    #[inline(always)]
    pub fn quiet() -> Quiet {
        Quiet
    }
}

pub use imp::*;

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_site_never_fires() {
        let _x = exclusive("gemm", "1");
        for _ in 0..10 {
            assert!(!fire("steqr"));
        }
        assert_eq!(fired("steqr"), 0);
    }

    #[test]
    fn fires_exactly_on_nth_hit() {
        let _x = exclusive("laed4", "3");
        assert!(!fire("laed4"));
        assert!(!fire("laed4"));
        assert!(fire("laed4"));
        assert!(!fire("laed4"));
        assert_eq!(fired("laed4"), 1);
        assert_eq!(hits("laed4"), 4);
    }

    #[test]
    fn plus_spec_fires_repeatedly() {
        let _x = exclusive("gemm", "2+");
        assert!(!fire("gemm"));
        assert!(fire("gemm"));
        assert!(fire("gemm"));
        assert_eq!(fired("gemm"), 2);
    }

    #[test]
    fn poke_nan_poisons_on_trigger_only() {
        let _x = exclusive("nan-gemm", "2");
        let mut buf = [1.0, 2.0];
        poke_nan("nan-gemm", &mut buf);
        assert!(buf[0].is_finite());
        poke_nan("nan-gemm", &mut buf);
        assert!(buf[0].is_nan());
        assert_eq!(buf[1], 2.0);
    }

    #[test]
    fn guard_drop_disarms() {
        {
            let _x = exclusive("steqr", "1");
        }
        let _q = quiet();
        assert!(!fire("steqr"));
    }
}
