//! Column-major dense matrix container.

use std::fmt;

/// A dense, column-major, `f64` matrix.
///
/// Storage is a single contiguous buffer of length `rows * cols`; element
/// `(i, j)` lives at `data[i + j * rows]`, matching LAPACK layout so panels
/// of columns are contiguous slices.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// An `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Adopt a column-major buffer. Panics if the length is not `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { data, rows, cols }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension of the storage (equal to `rows`).
    pub fn ld(&self) -> usize {
        self.rows
    }

    /// Column `j` as a contiguous slice.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Column `j` as a mutable contiguous slice.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// The raw column-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The raw column-major buffer, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the raw buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Columns `j0..j1` as one contiguous slice (a column panel).
    pub fn panel(&self, j0: usize, j1: usize) -> &[f64] {
        &self.data[j0 * self.rows..j1 * self.rows]
    }

    /// Columns `j0..j1` as one contiguous mutable slice.
    pub fn panel_mut(&mut self, j0: usize, j1: usize) -> &mut [f64] {
        &mut self.data[j0 * self.rows..j1 * self.rows]
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        crate::blas::nrm2(&self.data)
    }

    /// True if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i + j * self.rows]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i + j * self.rows]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let rmax = self.rows.min(8);
        let cmax = self.cols.min(8);
        for i in 0..rmax {
            write!(f, "  ")?;
            for j in 0..cmax {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if cmax < self.cols { "..." } else { "" })?;
        }
        if rmax < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_unit_diagonal() {
        let m = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn column_major_layout() {
        let m = Matrix::from_fn(3, 2, |i, j| (i + 10 * j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.col(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn panel_spans_columns() {
        let m = Matrix::from_fn(2, 4, |i, j| (i + 10 * j) as f64);
        assert_eq!(m.panel(1, 3), &[10.0, 11.0, 20.0, 21.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn max_abs_and_fro() {
        let m = Matrix::from_vec(2, 2, vec![3.0, -4.0, 0.0, 0.0]);
        assert_eq!(m.max_abs(), 4.0);
        assert!((m.fro_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn non_finite_detection() {
        let mut m = Matrix::zeros(2, 2);
        assert!(!m.has_non_finite());
        m[(1, 0)] = f64::NAN;
        assert!(m.has_non_finite());
    }
}
