//! BLAS-like kernels on `(slice, leading-dimension)` pairs, column-major.
//!
//! [`gemm`] is a packed, register-tiled implementation (see
//! [`crate::kernel`]): A is packed into `MR`-tall row panels and B into
//! `NR`-wide column panels per `MC x KC x NC` cache block, and an
//! `8 x 4` / `4 x 4` micro-kernel (chosen by problem shape) performs the
//! innermost rank-KC update from the packed panels. Packing buffers are
//! recycled through a per-thread workspace, so steady-state GEMM performs
//! zero heap allocation; depths below the packing break-even take an
//! unpacked AXPY fast path. [`gemm_par`] partitions C into 2-D tiles
//! executed on a persistent worker pool ([`crate::pool`]) instead of
//! spawning scoped threads per call, keeping the sequential fallback below
//! a flop threshold. The seed register-blocked AXPY GEMM survives as
//! [`gemm_axpy_ref`]: it is the correctness oracle in tests and the
//! baseline the GEMM benchmarks compare against.

// BLAS-shaped signatures (m, n, k, alpha, a, lda, …) throughout.
#![allow(clippy::too_many_arguments)]

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dot product.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `x *= alpha`.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm with scaling to avoid overflow/underflow (dnrm2 style).
pub fn nrm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &xi in x {
        if xi != 0.0 {
            let a = xi.abs();
            if scale < a {
                ssq = 1.0 + ssq * (scale / a) * (scale / a);
                scale = a;
            } else {
                ssq += (a / scale) * (a / scale);
            }
        }
    }
    scale * ssq.sqrt()
}

/// `y = alpha * A * x + beta * y` where A is `m x n` column-major with
/// leading dimension `lda`.
pub fn gemv(
    m: usize,
    n: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    x: &[f64],
    beta: f64,
    y: &mut [f64],
) {
    debug_assert!(a.len() >= if n == 0 { 0 } else { (n - 1) * lda + m });
    debug_assert!(x.len() >= n && y.len() >= m);
    let y = &mut y[..m];
    if beta == 0.0 {
        y.fill(0.0);
    } else if beta != 1.0 {
        scal(beta, y);
    }
    for j in 0..n {
        let t = alpha * x[j];
        if t != 0.0 {
            axpy(t, &a[j * lda..j * lda + m], y);
        }
    }
}

/// Inner kernel: one block-column update of GEMM over a k-range, with the
/// C-column loop unrolled by 4 so each A column is loaded once per 4 C
/// columns.
fn gemm_block(
    m: usize,
    n: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    krange: std::ops::Range<usize>,
    c: &mut [f64],
    ldc: usize,
) {
    let mut j = 0;
    while j + 4 <= n {
        // Split the four target columns out of C so the inner loop writes
        // through independent slices.
        let (c0, rest) = c[j * ldc..].split_at_mut(ldc);
        let (c1, rest) = rest.split_at_mut(ldc);
        let (c2, rest) = rest.split_at_mut(ldc);
        // The buffer may end right after the last column's m-th row.
        let c3 = &mut rest[..m];
        let (c0, c1, c2, c3) = (&mut c0[..m], &mut c1[..m], &mut c2[..m], &mut c3[..m]);
        for l in krange.clone() {
            let acol = &a[l * lda..l * lda + m];
            let t0 = alpha * b[l + j * ldb];
            let t1 = alpha * b[l + (j + 1) * ldb];
            let t2 = alpha * b[l + (j + 2) * ldb];
            let t3 = alpha * b[l + (j + 3) * ldb];
            for i in 0..m {
                let ai = acol[i];
                c0[i] += t0 * ai;
                c1[i] += t1 * ai;
                c2[i] += t2 * ai;
                c3[i] += t3 * ai;
            }
        }
        j += 4;
    }
    while j < n {
        let cj = &mut c[j * ldc..j * ldc + m];
        for l in krange.clone() {
            let t = alpha * b[l + j * ldb];
            if t != 0.0 {
                axpy(t, &a[l * lda..l * lda + m], cj);
            }
        }
        j += 1;
    }
}

/// `C = alpha * A * B + beta * C` via the packed micro-kernel driver.
///
/// `A` is `m x k` (ld `lda`), `B` is `k x n` (ld `ldb`), `C` is `m x n`
/// (ld `ldc`), all column-major. After one call at a given problem size,
/// repeated calls perform zero heap allocation (packing buffers are
/// per-thread and grow-once; see [`crate::workspace_growth_events`]).
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    debug_assert!(m == 0 || k == 0 || a.len() >= (k - 1) * lda + m);
    debug_assert!(n == 0 || k == 0 || b.len() >= (n - 1) * ldb + k);
    debug_assert!(m == 0 || n == 0 || c.len() >= (n - 1) * ldc + m);
    debug_assert!(ldc >= m.max(1));
    // SAFETY: `c` is an exclusive slice covering (n-1)*ldc + m elements
    // (asserted above), so every column the kernel writes through the raw
    // pointer stays inside the borrow; a/b are only read within the
    // extents implied by (m, n, k, lda, ldb).
    unsafe {
        crate::kernel::gemm_packed_raw(m, n, k, alpha, a, lda, b, ldb, beta, c.as_mut_ptr(), ldc)
    }
}

/// Reference GEMM: the register-blocked AXPY scheme this crate shipped
/// before the packed micro-kernel rewrite (C swept four columns at a time,
/// k-loop blocked for cache). Kept as the independent correctness oracle
/// for the packed kernel's property tests and as the baseline the GEMM
/// throughput benchmarks report speedups against. Semantics are identical
/// to [`gemm`].
pub fn gemm_axpy_ref(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    // Apply beta once up front.
    for j in 0..n {
        let cj = &mut c[j * ldc..j * ldc + m];
        if beta == 0.0 {
            cj.fill(0.0);
        } else if beta != 1.0 {
            scal(beta, cj);
        }
    }
    if k == 0 || alpha == 0.0 {
        return;
    }
    // Cache blocking: KC k-steps × MC rows. The A block (MC × KC ≈ 256 KiB)
    // stays in L2 across the whole column sweep, so DRAM traffic for A is
    // paid once instead of once per 4-column group.
    const KC: usize = 256;
    const MC: usize = 512;
    let mut l0 = 0;
    while l0 < k {
        let l1 = (l0 + KC).min(k);
        let mut i0 = 0;
        while i0 < m {
            let i1 = (i0 + MC).min(m);
            gemm_block(
                i1 - i0,
                n,
                alpha,
                &a[i0..],
                lda,
                b,
                ldb,
                l0..l1,
                &mut c[i0..],
                ldc,
            );
            i0 = i1;
        }
        l0 = l1;
    }
}

/// A raw `*mut f64` that may cross thread boundaries. Used to hand each
/// pool tile its disjoint sub-block of C.
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
// SAFETY: SendPtr is only a conveyance — every dereference happens inside
// a tile whose (i, j) block is disjoint from all other tiles', under the
// caller's exclusive borrow of C (see run_tiles' safety comment below).
unsafe impl Send for SendPtr {}
// SAFETY: as above; shared access never dereferences overlapping regions.
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Accessor taking `self`, so closures capture the `Sync` wrapper
    /// rather than the raw pointer field (edition-2021 disjoint capture).
    fn get(self) -> *mut f64 {
        self.0
    }
}

/// Flop count below which `gemm_par` runs the sequential kernel: even with
/// a persistent pool, handing out tiles costs a few µs of synchronization
/// that only pays off around a million flops (same threshold threaded BLAS
/// implementations use for their sequential fallback).
const PAR_THRESHOLD_FLOPS: usize = 1 << 20;

/// Parallel GEMM: C is partitioned into a 2-D grid of tiles (edges aligned
/// to the micro-kernel footprint), executed on the persistent worker pool
/// with the calling thread participating. Tiles are claimed dynamically,
/// so ragged edges and skewed shapes load-balance without a static
/// schedule. `num_threads` bounds the tile overdecomposition; the pool
/// itself is sized once from the machine.
#[allow(clippy::too_many_arguments)]
// dcst-hot
pub fn gemm_par(
    num_threads: usize,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    let nt = num_threads.max(1).min(m * n);
    if nt == 1 || 2 * m * n * k < PAR_THRESHOLD_FLOPS {
        gemm(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
        return;
    }
    debug_assert!(a.len() >= if k == 0 { 0 } else { (k - 1) * lda + m });
    debug_assert!(b.len() >= if k == 0 { 0 } else { (n - 1) * ldb + k });
    debug_assert!(c.len() >= (n - 1) * ldc + m);
    debug_assert!(ldc >= m);
    // Build a roughly square 2-D tile grid with ~3 tiles per executor so
    // dynamic claiming can absorb load imbalance, tile edges rounded to
    // the micro-kernel footprint (8 rows, 4 columns).
    let target = 3 * nt;
    let bm0 = (((target * m) as f64 / n.max(1) as f64).sqrt().round() as usize).clamp(1, target);
    let tile_m = (m.div_ceil(bm0)).div_ceil(8) * 8;
    let bm = m.div_ceil(tile_m);
    let bn0 = (target / bm).max(1);
    let tile_n = (n.div_ceil(bn0)).div_ceil(4) * 4;
    let bn = n.div_ceil(tile_n);
    let cptr = SendPtr(c.as_mut_ptr());
    crate::pool::run_tiles(bm * bn, &move |t| {
        let (bi, bj) = (t % bm, t / bm);
        let i0 = bi * tile_m;
        let i1 = m.min(i0 + tile_m);
        let j0 = bj * tile_n;
        let j1 = n.min(j0 + tile_n);
        // SAFETY: tiles cover disjoint element sets of C, the caller's
        // exclusive borrow of `c` outlives run_tiles, and each tile's
        // writes stay inside its (i0..i1) x (j0..j1) block.
        unsafe {
            let cp = cptr.get().add(i0 + j0 * ldc);
            crate::kernel::gemm_packed_raw(
                i1 - i0,
                j1 - j0,
                k,
                alpha,
                &a[i0..],
                lda,
                &b[j0 * ldb..],
                ldb,
                beta,
                cp,
                ldc,
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn gemm_naive(m: usize, n: usize, k: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for j in 0..n {
            for l in 0..k {
                for i in 0..m {
                    c[i + j * m] += a[i + l * m] * b[l + j * k];
                }
            }
        }
        c
    }

    fn rand_vec(rng: &mut impl Rng, len: usize) -> Vec<f64> {
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn gemm_matches_naive_various_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 2),
            (8, 8, 8),
            (17, 13, 29),
            (64, 5, 300),
            (5, 64, 300),
        ] {
            let a = rand_vec(&mut rng, m * k);
            let b = rand_vec(&mut rng, k * n);
            let mut c = vec![0.0; m * n];
            gemm(m, n, k, 1.0, &a, m, &b, k, 0.0, &mut c, m);
            let cref = gemm_naive(m, n, k, &a, &b);
            for (x, y) in c.iter().zip(&cref) {
                assert!((x - y).abs() < 1e-12 * (k as f64), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn gemm_alpha_beta() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (m, n, k) = (7, 6, 5);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let c0 = rand_vec(&mut rng, m * n);
        let mut c = c0.clone();
        gemm(m, n, k, 2.0, &a, m, &b, k, -0.5, &mut c, m);
        let prod = gemm_naive(m, n, k, &a, &b);
        for i in 0..m * n {
            let expect = 2.0 * prod[i] - 0.5 * c0[i];
            assert!((c[i] - expect).abs() < 1e-12, "{} vs {}", c[i], expect);
        }
    }

    #[test]
    fn gemm_with_submatrix_ld() {
        // Multiply the top-left 2x2 blocks of 4x4 matrices using ld = 4.
        let a: Vec<f64> = (0..16).map(|x| x as f64).collect();
        let b: Vec<f64> = (0..16).map(|x| (x * x) as f64).collect();
        let mut c = vec![0.0; 4];
        gemm(2, 2, 2, 1.0, &a, 4, &b, 4, 0.0, &mut c, 2);
        // A2 = [[0,4],[1,5]]; B2 = [[0,16],[1,25]]
        assert_eq!(c, vec![4.0, 5.0, 100.0, 141.0]);
    }

    #[test]
    fn gemm_par_matches_seq() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let (m, n, k) = (31, 23, 17);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(m, n, k, 1.0, &a, m, &b, k, 0.0, &mut c1, m);
        for nt in [1, 2, 3, 8] {
            c2.fill(0.0);
            gemm_par(nt, m, n, k, 1.0, &a, m, &b, k, 0.0, &mut c2, m);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn gemm_par_with_ldc_subblock() {
        // Write a 3x4 product into the top-left of a 5-row buffer.
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let (m, n, k, ldc) = (3, 4, 6, 5);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let mut c = vec![7.0; ldc * n];
        gemm_par(3, m, n, k, 1.0, &a, m, &b, k, 0.0, &mut c, ldc);
        let mut cref = vec![0.0; m * n];
        gemm(m, n, k, 1.0, &a, m, &b, k, 0.0, &mut cref, m);
        for j in 0..n {
            for i in 0..ldc {
                if i < m {
                    assert!((c[i + j * ldc] - cref[i + j * m]).abs() < 1e-13);
                } else {
                    assert_eq!(c[i + j * ldc], 7.0, "padding rows untouched");
                }
            }
        }
    }

    #[test]
    fn gemm_par_last_panel_short_buffer_ldc_gt_m() {
        // Regression: C's buffer ends right after the last column's m-th
        // row ((n-1)*ldc + m elements, ldc > m) and n is not divisible by
        // the thread count, with the problem large enough to take the
        // parallel path. The seed's column-strip splitter miscomputed the
        // last panel's length for exactly this shape class.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let (m, n, k, ldc, nt) = (3, 23, 8000, 7, 4);
        assert!(
            2 * m * n * k >= super::PAR_THRESHOLD_FLOPS,
            "must exercise the parallel path"
        );
        assert_eq!(n % nt, 3, "n must not divide evenly across threads");
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let mut c = vec![7.0; (n - 1) * ldc + m];
        gemm_par(nt, m, n, k, 1.0, &a, m, &b, k, 0.0, &mut c, ldc);
        let mut cref = vec![0.0; m * n];
        gemm_axpy_ref(m, n, k, 1.0, &a, m, &b, k, 0.0, &mut cref, m);
        for j in 0..n {
            for i in 0..ldc {
                let idx = i + j * ldc;
                if i < m {
                    let err = (c[idx] - cref[i + j * m]).abs();
                    assert!(err < 1e-10, "C[{i},{j}] off by {err}");
                } else if idx < c.len() {
                    assert_eq!(c[idx], 7.0, "padding row {i} of column {j} clobbered");
                }
            }
        }
    }

    #[test]
    fn gemm_steady_state_allocates_nothing() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (m, n, k) = (100, 90, 300);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let mut c = vec![0.0; m * n];
        let mut ct = vec![0.0; n * m];
        // Warm-up grows this thread's packing buffers to their high-water
        // mark for both shapes.
        gemm(m, n, k, 1.0, &a, m, &b, k, 0.0, &mut c, m);
        gemm(n, m, k, 1.0, &b, n, &a, k, 0.0, &mut ct, n);
        let snapshot = crate::workspace_growth_events();
        for _ in 0..5 {
            gemm(m, n, k, 1.0, &a, m, &b, k, 0.5, &mut c, m);
            gemm(n, m, k, -0.5, &b, n, &a, k, 1.0, &mut ct, n);
        }
        assert_eq!(
            crate::workspace_growth_events(),
            snapshot,
            "packed GEMM must not grow workspace buffers after warm-up"
        );
    }

    #[test]
    fn gemm_matches_axpy_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for &(m, n, k) in &[
            (1, 1, 50),
            (7, 4, 9),
            (8, 4, 256),
            (9, 5, 257),
            (33, 12, 64),
        ] {
            let a = rand_vec(&mut rng, m * k);
            let b = rand_vec(&mut rng, k * n);
            let c0 = rand_vec(&mut rng, m * n);
            let mut c1 = c0.clone();
            let mut c2 = c0.clone();
            gemm(m, n, k, 1.5, &a, m, &b, k, -0.5, &mut c1, m);
            gemm_axpy_ref(m, n, k, 1.5, &a, m, &b, k, -0.5, &mut c2, m);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-11 * (k as f64).max(1.0), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn gemv_matches_gemm() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (m, n) = (9, 11);
        let a = rand_vec(&mut rng, m * n);
        let x = rand_vec(&mut rng, n);
        let mut y1 = rand_vec(&mut rng, m);
        let mut y2 = y1.clone();
        gemv(m, n, 1.5, &a, m, &x, 0.25, &mut y1);
        gemm(m, 1, n, 1.5, &a, m, &x, n, 0.25, &mut y2, m);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-13);
        }
    }

    #[test]
    fn nrm2_is_robust_to_scale() {
        let x = vec![3e300, 4e300];
        assert!((nrm2(&x) - 5e300).abs() < 1e287);
        let y = vec![3e-300, 4e-300];
        assert!((nrm2(&y) - 5e-300).abs() < 1e-313);
        assert_eq!(nrm2(&[]), 0.0);
    }

    #[test]
    fn dot_axpy_scal_basics() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![1.0, 1.0, 1.0];
        assert_eq!(dot(&x, &y), 6.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
        scal(0.5, &mut y);
        assert_eq!(y, vec![1.5, 2.5, 3.5]);
    }
}
