//! BLAS-like kernels on `(slice, leading-dimension)` pairs, column-major.
//!
//! The GEMM follows a register-blocked AXPY scheme: C is processed four
//! columns at a time so each column of A loaded from memory is reused four
//! times, and the k-loop is blocked so the active A panel stays in cache.
//! This is not a packed micro-kernel GEMM, but it vectorizes well and is
//! within a small factor of peak for the panel shapes the eigensolver uses.

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dot product.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `x *= alpha`.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm with scaling to avoid overflow/underflow (dnrm2 style).
pub fn nrm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &xi in x {
        if xi != 0.0 {
            let a = xi.abs();
            if scale < a {
                ssq = 1.0 + ssq * (scale / a) * (scale / a);
                scale = a;
            } else {
                ssq += (a / scale) * (a / scale);
            }
        }
    }
    scale * ssq.sqrt()
}

/// `y = alpha * A * x + beta * y` where A is `m x n` column-major with
/// leading dimension `lda`.
pub fn gemv(m: usize, n: usize, alpha: f64, a: &[f64], lda: usize, x: &[f64], beta: f64, y: &mut [f64]) {
    debug_assert!(a.len() >= if n == 0 { 0 } else { (n - 1) * lda + m });
    debug_assert!(x.len() >= n && y.len() >= m);
    let y = &mut y[..m];
    if beta == 0.0 {
        y.fill(0.0);
    } else if beta != 1.0 {
        scal(beta, y);
    }
    for j in 0..n {
        let t = alpha * x[j];
        if t != 0.0 {
            axpy(t, &a[j * lda..j * lda + m], y);
        }
    }
}

/// Inner kernel: one block-column update of GEMM over a k-range, with the
/// C-column loop unrolled by 4 so each A column is loaded once per 4 C
/// columns.
fn gemm_block(
    m: usize,
    n: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    krange: std::ops::Range<usize>,
    c: &mut [f64],
    ldc: usize,
) {
    let mut j = 0;
    while j + 4 <= n {
        // Split the four target columns out of C so the inner loop writes
        // through independent slices.
        let (c0, rest) = c[j * ldc..].split_at_mut(ldc);
        let (c1, rest) = rest.split_at_mut(ldc);
        let (c2, rest) = rest.split_at_mut(ldc);
        // The buffer may end right after the last column's m-th row.
        let c3 = &mut rest[..m];
        let (c0, c1, c2, c3) = (&mut c0[..m], &mut c1[..m], &mut c2[..m], &mut c3[..m]);
        for l in krange.clone() {
            let acol = &a[l * lda..l * lda + m];
            let t0 = alpha * b[l + j * ldb];
            let t1 = alpha * b[l + (j + 1) * ldb];
            let t2 = alpha * b[l + (j + 2) * ldb];
            let t3 = alpha * b[l + (j + 3) * ldb];
            for i in 0..m {
                let ai = acol[i];
                c0[i] += t0 * ai;
                c1[i] += t1 * ai;
                c2[i] += t2 * ai;
                c3[i] += t3 * ai;
            }
        }
        j += 4;
    }
    while j < n {
        let cj = &mut c[j * ldc..j * ldc + m];
        for l in krange.clone() {
            let t = alpha * b[l + j * ldb];
            if t != 0.0 {
                axpy(t, &a[l * lda..l * lda + m], cj);
            }
        }
        j += 1;
    }
}

/// `C = alpha * A * B + beta * C`.
///
/// `A` is `m x k` (ld `lda`), `B` is `k x n` (ld `ldb`), `C` is `m x n`
/// (ld `ldc`), all column-major.
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    // Apply beta once up front.
    for j in 0..n {
        let cj = &mut c[j * ldc..j * ldc + m];
        if beta == 0.0 {
            cj.fill(0.0);
        } else if beta != 1.0 {
            scal(beta, cj);
        }
    }
    if k == 0 || alpha == 0.0 {
        return;
    }
    // Cache blocking: KC k-steps × MC rows. The A block (MC × KC ≈ 256 KiB)
    // stays in L2 across the whole column sweep, so DRAM traffic for A is
    // paid once instead of once per 4-column group.
    const KC: usize = 256;
    const MC: usize = 512;
    let mut l0 = 0;
    while l0 < k {
        let l1 = (l0 + KC).min(k);
        let mut i0 = 0;
        while i0 < m {
            let i1 = (i0 + MC).min(m);
            gemm_block(i1 - i0, n, alpha, &a[i0..], lda, b, ldb, l0..l1, &mut c[i0..], ldc);
            i0 = i1;
        }
        l0 = l1;
    }
}

/// Parallel GEMM: the columns of `C` (and of `B`) are split into
/// `num_threads` contiguous panels, each computed by a scoped thread with
/// the sequential [`gemm`]. Column panels of a column-major `C` are
/// disjoint slices for any `ldc ≥ m`, so this works on sub-blocks too.
#[allow(clippy::too_many_arguments)]
pub fn gemm_par(
    num_threads: usize,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    let nt = num_threads.max(1).min(n.max(1));
    // Threaded BLAS implementations fall back to the sequential kernel for
    // small problems; scoped-thread startup (~tens of µs) dwarfs the GEMM
    // below roughly a million flops.
    const PAR_THRESHOLD_FLOPS: usize = 1 << 20;
    if nt == 1 || n < 2 || 2 * m * n * k < PAR_THRESHOLD_FLOPS {
        gemm(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
        return;
    }
    let cols_per = n.div_ceil(nt);
    std::thread::scope(|s| {
        let mut rest = c;
        let mut j0 = 0usize;
        while j0 < n {
            let j1 = (j0 + cols_per).min(n);
            let len = rest.len();
            let split = if j1 < n { (j1 - j0) * ldc } else { len.min((j1 - j0 - 1) * ldc + m) };
            let here = rest;
            let (cpanel, tail) = here.split_at_mut(split);
            rest = tail;
            let jb = j0;
            let ncols = j1 - j0;
            s.spawn(move || {
                gemm(m, ncols, k, alpha, a, lda, &b[jb * ldb..], ldb, beta, cpanel, ldc);
            });
            j0 = j1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn gemm_naive(m: usize, n: usize, k: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for j in 0..n {
            for l in 0..k {
                for i in 0..m {
                    c[i + j * m] += a[i + l * m] * b[l + j * k];
                }
            }
        }
        c
    }

    fn rand_vec(rng: &mut impl Rng, len: usize) -> Vec<f64> {
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn gemm_matches_naive_various_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 2), (8, 8, 8), (17, 13, 29), (64, 5, 300), (5, 64, 300)] {
            let a = rand_vec(&mut rng, m * k);
            let b = rand_vec(&mut rng, k * n);
            let mut c = vec![0.0; m * n];
            gemm(m, n, k, 1.0, &a, m, &b, k, 0.0, &mut c, m);
            let cref = gemm_naive(m, n, k, &a, &b);
            for (x, y) in c.iter().zip(&cref) {
                assert!((x - y).abs() < 1e-12 * (k as f64), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn gemm_alpha_beta() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (m, n, k) = (7, 6, 5);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let c0 = rand_vec(&mut rng, m * n);
        let mut c = c0.clone();
        gemm(m, n, k, 2.0, &a, m, &b, k, -0.5, &mut c, m);
        let prod = gemm_naive(m, n, k, &a, &b);
        for i in 0..m * n {
            let expect = 2.0 * prod[i] - 0.5 * c0[i];
            assert!((c[i] - expect).abs() < 1e-12, "{} vs {}", c[i], expect);
        }
    }

    #[test]
    fn gemm_with_submatrix_ld() {
        // Multiply the top-left 2x2 blocks of 4x4 matrices using ld = 4.
        let a: Vec<f64> = (0..16).map(|x| x as f64).collect();
        let b: Vec<f64> = (0..16).map(|x| (x * x) as f64).collect();
        let mut c = vec![0.0; 4];
        gemm(2, 2, 2, 1.0, &a, 4, &b, 4, 0.0, &mut c, 2);
        // A2 = [[0,4],[1,5]]; B2 = [[0,16],[1,25]]
        assert_eq!(c, vec![4.0, 5.0, 100.0, 141.0]);
    }

    #[test]
    fn gemm_par_matches_seq() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let (m, n, k) = (31, 23, 17);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(m, n, k, 1.0, &a, m, &b, k, 0.0, &mut c1, m);
        for nt in [1, 2, 3, 8] {
            c2.fill(0.0);
            gemm_par(nt, m, n, k, 1.0, &a, m, &b, k, 0.0, &mut c2, m);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn gemm_par_with_ldc_subblock() {
        // Write a 3x4 product into the top-left of a 5-row buffer.
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let (m, n, k, ldc) = (3, 4, 6, 5);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let mut c = vec![7.0; ldc * n];
        gemm_par(3, m, n, k, 1.0, &a, m, &b, k, 0.0, &mut c, ldc);
        let mut cref = vec![0.0; m * n];
        gemm(m, n, k, 1.0, &a, m, &b, k, 0.0, &mut cref, m);
        for j in 0..n {
            for i in 0..ldc {
                if i < m {
                    assert!((c[i + j * ldc] - cref[i + j * m]).abs() < 1e-13);
                } else {
                    assert_eq!(c[i + j * ldc], 7.0, "padding rows untouched");
                }
            }
        }
    }

    #[test]
    fn gemv_matches_gemm() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (m, n) = (9, 11);
        let a = rand_vec(&mut rng, m * n);
        let x = rand_vec(&mut rng, n);
        let mut y1 = rand_vec(&mut rng, m);
        let mut y2 = y1.clone();
        gemv(m, n, 1.5, &a, m, &x, 0.25, &mut y1);
        gemm(m, 1, n, 1.5, &a, m, &x, n, 0.25, &mut y2, m);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-13);
        }
    }

    #[test]
    fn nrm2_is_robust_to_scale() {
        let x = vec![3e300, 4e300];
        assert!((nrm2(&x) - 5e300).abs() < 1e287);
        let y = vec![3e-300, 4e-300];
        assert!((nrm2(&y) - 5e-300).abs() < 1e-313);
        assert_eq!(nrm2(&[]), 0.0);
    }

    #[test]
    fn dot_axpy_scal_basics() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![1.0, 1.0, 1.0];
        assert_eq!(dot(&x, &y), 6.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
        scal(0.5, &mut y);
        assert_eq!(y, vec![1.5, 2.5, 3.5]);
    }
}
