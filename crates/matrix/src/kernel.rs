//! Packed, register-tiled GEMM core (BLIS-style five-loop structure).
//!
//! The driver walks C in `NC`-wide column slabs and `KC`-deep rank updates.
//! For each slab the relevant `KC x NC` block of B is packed once into
//! contiguous `NR`-wide column panels; for each `MC x KC` block of A packed
//! into `MR`-tall row panels, an `MR x NR` register-tiled micro-kernel
//! performs the innermost rank-KC update. Packing buffers come from the
//! per-thread [`crate::workspace::Workspace`], so steady-state execution
//! performs no heap allocation.
//!
//! Two micro-kernel shapes are compiled from one const-generic body and
//! selected at runtime by problem shape: `8 x 4` for tall-enough blocks,
//! `4 x 4` when fewer than eight rows remain in the whole problem.
//!
//! Everything here works on a raw pointer for C so that `gemm_par` can hand
//! out disjoint 2-D tiles of one C buffer without overlapping `&mut`
//! slices; element sets of distinct tiles are disjoint.

// BLAS-shaped signatures (m, n, k, alpha, a, lda, …) throughout.
#![allow(clippy::too_many_arguments)]

use crate::workspace::with_workspace;

/// Rows per A micro-panel (large variant).
pub const MR: usize = 8;
/// Rows per A micro-panel (small variant, used when `m < MR`).
pub const MR_SMALL: usize = 4;
/// Columns per B micro-panel.
pub const NR: usize = 4;
/// Rows of A packed per cache block (fits L2 alongside the B panel slice).
pub const MC: usize = 128;
/// Depth of one packed rank-update block.
pub const KC: usize = 256;
/// Columns of B packed per outer slab.
pub const NC: usize = 1024;

#[inline]
fn round_up(x: usize, a: usize) -> usize {
    x.div_ceil(a) * a
}

/// Pack `A[0..mc, pc..pc+kc]` (column-major, ld `lda`) into `MR_P`-tall row
/// panels: panel `i` holds rows `i*MR_P..` stored as `kc` consecutive
/// groups of `MR_P` values, zero-padded on the bottom edge.
// dcst-hot
fn pack_a<const MR_P: usize>(mc: usize, kc: usize, a: &[f64], lda: usize, dst: &mut [f64]) {
    debug_assert!(dst.len() >= round_up(mc, MR_P) * kc);
    let mut offset = 0;
    let mut ir = 0;
    while ir < mc {
        let pr = MR_P.min(mc - ir);
        if pr == MR_P {
            for p in 0..kc {
                let src = &a[ir + p * lda..ir + p * lda + MR_P];
                dst[offset + p * MR_P..offset + (p + 1) * MR_P].copy_from_slice(src);
            }
        } else {
            for p in 0..kc {
                let src = &a[ir + p * lda..ir + p * lda + pr];
                let out = &mut dst[offset + p * MR_P..offset + (p + 1) * MR_P];
                out[..pr].copy_from_slice(src);
                out[pr..].fill(0.0);
            }
        }
        offset += kc * MR_P;
        ir += MR_P;
    }
}

/// Pack `B[0..kc, 0..nc]` (column-major, ld `ldb`) into `NR`-wide column
/// panels: panel `j` holds columns `j*NR..` stored as `kc` consecutive
/// groups of `NR` values, zero-padded on the right edge.
// dcst-hot
fn pack_b(kc: usize, nc: usize, b: &[f64], ldb: usize, dst: &mut [f64]) {
    debug_assert!(dst.len() >= kc * round_up(nc, NR));
    let mut offset = 0;
    let mut jr = 0;
    while jr < nc {
        let qr = NR.min(nc - jr);
        for p in 0..kc {
            let out = &mut dst[offset + p * NR..offset + (p + 1) * NR];
            for (c, o) in out.iter_mut().enumerate().take(qr) {
                *o = b[p + (jr + c) * ldb];
            }
            out[qr..].fill(0.0);
        }
        offset += kc * NR;
        jr += NR;
    }
}

/// `MR_P x NR` micro-kernel body: `C[0..mr, 0..nr] += alpha * Ap * Bp`
/// where `Ap`/`Bp` are packed panels of depth `kc`. The accumulator lives
/// in registers; the zero padding in the panels makes the multiply loop
/// shape-independent, only the write-back respects `mr`/`nr`.
///
/// Always-inlined so the `#[target_feature]` wrappers below recompile the
/// same body with wider vector ISAs.
///
/// # Safety
/// `c` must be valid for reads and writes at `c[i + j*ldc]` for all
/// `i < mr`, `j < nr`.
#[inline(always)]
// dcst-hot
unsafe fn microkernel_body<const MR_P: usize>(
    kc: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: *mut f64,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    debug_assert!(ap.len() >= kc * MR_P && bp.len() >= kc * NR);
    let mut acc = [[0.0f64; MR_P]; NR];
    // `chunks_exact` hands LLVM compile-time panel widths, so the inner
    // loops fully unroll into bounds-check-free vector FMAs.
    for (a, b) in ap.chunks_exact(MR_P).zip(bp.chunks_exact(NR)).take(kc) {
        for (j, accj) in acc.iter_mut().enumerate() {
            let bj = b[j];
            for i in 0..MR_P {
                accj[i] += a[i] * bj;
            }
        }
    }
    if mr == MR_P && nr == NR {
        for (j, accj) in acc.iter().enumerate() {
            let col = c.add(j * ldc);
            for (i, &v) in accj.iter().enumerate() {
                *col.add(i) += alpha * v;
            }
        }
    } else {
        for (j, accj) in acc.iter().enumerate().take(nr) {
            let col = c.add(j * ldc);
            for (i, &v) in accj.iter().enumerate().take(mr) {
                *col.add(i) += alpha * v;
            }
        }
    }
}

/// Micro-kernel entry point type: one monomorphization per panel height.
type MicroFn = unsafe fn(usize, f64, &[f64], &[f64], *mut f64, usize, usize, usize);

// dcst-hot
unsafe fn microkernel_generic<const MR_P: usize>(
    kc: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: *mut f64,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    microkernel_body::<MR_P>(kc, alpha, ap, bp, c, ldc, mr, nr)
}

/// The portable x86-64 baseline is SSE2; recompiling the identical body
/// with FMA + 256/512-bit vectors is worth 2-4x on the multiply loop, so
/// the dispatcher below picks the widest ISA the running CPU reports.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
// dcst-hot
unsafe fn microkernel_avx2<const MR_P: usize>(
    kc: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: *mut f64,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    microkernel_body::<MR_P>(kc, alpha, ap, bp, c, ldc, mr, nr)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,fma")]
// dcst-hot
unsafe fn microkernel_avx512<const MR_P: usize>(
    kc: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: *mut f64,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    microkernel_body::<MR_P>(kc, alpha, ap, bp, c, ldc, mr, nr)
}

/// Pick the widest micro-kernel the CPU supports, through the shared
/// workspace dispatcher (one detection, one `DCST_FORCE_SCALAR` knob).
// dcst-hot
fn select_microkernel<const MR_P: usize>() -> MicroFn {
    #[cfg(target_arch = "x86_64")]
    {
        match crate::simd::simd_level() {
            crate::simd::SimdLevel::Avx512 => microkernel_avx512::<MR_P>,
            crate::simd::SimdLevel::Avx2 => microkernel_avx2::<MR_P>,
            crate::simd::SimdLevel::Scalar => microkernel_generic::<MR_P>,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        microkernel_generic::<MR_P>
    }
}

/// Sweep all micro-tiles of one packed (A-block, B-slab) pair.
///
/// # Safety
/// `c` must cover the `mc x nc` block with leading dimension `ldc`.
// dcst-hot
unsafe fn macro_kernel<const MR_P: usize>(
    mc: usize,
    nc: usize,
    kc: usize,
    alpha: f64,
    a_pack: &[f64],
    b_pack: &[f64],
    c: *mut f64,
    ldc: usize,
) {
    let micro = select_microkernel::<MR_P>();
    let mut jr = 0;
    while jr < nc {
        let nr = NR.min(nc - jr);
        let bp = &b_pack[(jr / NR) * kc * NR..];
        let mut ir = 0;
        while ir < mc {
            let mr = MR_P.min(mc - ir);
            let ap = &a_pack[(ir / MR_P) * kc * MR_P..];
            micro(kc, alpha, ap, bp, c.add(ir + jr * ldc), ldc, mr, nr);
            ir += MR_P;
        }
        jr += NR;
    }
}

/// Scale the `m x n` block at `c` by `beta` (0 ⇒ overwrite with zeros).
///
/// # Safety
/// `c` must cover the block with leading dimension `ldc`.
// dcst-hot
unsafe fn scale_c(m: usize, n: usize, beta: f64, c: *mut f64, ldc: usize) {
    if beta == 1.0 {
        return;
    }
    for j in 0..n {
        let col = c.add(j * ldc);
        if beta == 0.0 {
            std::slice::from_raw_parts_mut(col, m).fill(0.0);
        } else {
            for i in 0..m {
                *col.add(i) *= beta;
            }
        }
    }
}

/// Rank-k update without packing, for depths where packing traffic would
/// dominate: the classic AXPY sweep, one B element at a time.
///
/// # Safety
/// `c` must cover the `m x n` block with leading dimension `ldc`; beta must
/// already have been applied.
// dcst-hot
unsafe fn gemm_smallk_raw(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: *mut f64,
    ldc: usize,
) {
    for j in 0..n {
        let col = c.add(j * ldc);
        for l in 0..k {
            let t = alpha * b[l + j * ldb];
            if t != 0.0 {
                let acol = &a[l * lda..l * lda + m];
                for (i, &ai) in acol.iter().enumerate() {
                    *col.add(i) += t * ai;
                }
            }
        }
    }
}

/// Depth below which the unpacked AXPY sweep beats pack + micro-kernel.
const SMALL_K: usize = 8;

/// Full packed GEMM on a raw C pointer: `C = alpha*A*B + beta*C`.
///
/// # Safety
/// `c` must be valid for reads/writes at `c[i + j*ldc]` for `i < m`,
/// `j < n`, and no other thread may access those elements concurrently.
/// `a` and `b` must cover `m x k` (ld `lda`) and `k x n` (ld `ldb`).
// dcst-hot
pub(crate) unsafe fn gemm_packed_raw(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: *mut f64,
    ldc: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    scale_c(m, n, beta, c, ldc);
    if k == 0 || alpha == 0.0 {
        return;
    }
    if k < SMALL_K {
        gemm_smallk_raw(m, n, k, alpha, a, lda, b, ldb, c, ldc);
        return;
    }
    // Micro-kernel height: the 8x4 kernel whenever a full 8-row panel
    // exists; narrow problems fall back to 4x4 to waste less padding.
    if m >= MR {
        gemm_blocked::<MR>(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    } else {
        gemm_blocked::<MR_SMALL>(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    }
}

/// The five-loop blocked driver for one micro-kernel height.
///
/// # Safety
/// As for [`gemm_packed_raw`]; beta must already have been applied.
// dcst-hot
unsafe fn gemm_blocked<const MR_P: usize>(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: *mut f64,
    ldc: usize,
) {
    with_workspace(|ws| {
        let mut jc = 0;
        while jc < n {
            let nc = NC.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kc = KC.min(k - pc);
                let (a_pack, b_pack) =
                    ws.panels(round_up(m.min(MC), MR_P) * kc, kc * round_up(nc, NR));
                pack_b(kc, nc, &b[pc + jc * ldb..], ldb, b_pack);
                let mut ic = 0;
                while ic < m {
                    let mc = MC.min(m - ic);
                    pack_a::<MR_P>(mc, kc, &a[ic + pc * lda..], lda, a_pack);
                    macro_kernel::<MR_P>(
                        mc,
                        nc,
                        kc,
                        alpha,
                        a_pack,
                        b_pack,
                        c.add(ic + jc * ldc),
                        ldc,
                    );
                    ic += mc;
                }
                pc += kc;
            }
            jc += nc;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_pads_ragged_panels() {
        // 5x3 block out of a 6-row matrix, MR_P = 4: two panels of 4.
        let lda = 6;
        let a: Vec<f64> = (0..lda * 3).map(|x| x as f64).collect();
        let mut dst = vec![-1.0; 8 * 3];
        pack_a::<4>(5, 3, &a, lda, &mut dst);
        // Panel 0, p=0 holds rows 0..4 of column 0.
        assert_eq!(&dst[0..4], &[0.0, 1.0, 2.0, 3.0]);
        // Panel 1, p=0 holds row 4 then zero padding.
        assert_eq!(&dst[12..16], &[4.0, 0.0, 0.0, 0.0]);
        // Panel 1, p=2 holds row 4 of column 2.
        assert_eq!(&dst[20..24], &[16.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn pack_b_pads_ragged_panels() {
        // 2x5 block, ldb = 3: two panels of width 4.
        let ldb = 3;
        let b: Vec<f64> = (0..ldb * 5).map(|x| x as f64).collect();
        let mut dst = vec![-1.0; 2 * 8];
        pack_b(2, 5, &b, ldb, &mut dst);
        // Panel 0, p=0: row 0 of columns 0..4.
        assert_eq!(&dst[0..4], &[0.0, 3.0, 6.0, 9.0]);
        // Panel 0, p=1: row 1 of columns 0..4.
        assert_eq!(&dst[4..8], &[1.0, 4.0, 7.0, 10.0]);
        // Panel 1, p=0: row 0 of column 4, padded.
        assert_eq!(&dst[8..12], &[12.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn microkernel_edge_write_respects_bounds() {
        // kc = 1, A panel = [1,2,0,0] (mr = 2), B panel = [3,4,5,0] (nr = 3).
        let ap = [1.0, 2.0, 0.0, 0.0];
        let bp = [3.0, 4.0, 5.0, 0.0];
        let ldc = 3;
        let mut c = vec![10.0; ldc * 4];
        // SAFETY: packed panels hold kc*MR / kc*NR elements and c spans
        // ldc*4 >= (nr-1)*ldc + mr, the extent the micro-kernel writes.
        unsafe { microkernel_generic::<4>(1, 1.0, &ap, &bp, c.as_mut_ptr(), ldc, 2, 3) };
        assert_eq!(c[0], 13.0);
        assert_eq!(c[1], 16.0);
        assert_eq!(c[2], 10.0, "row past mr untouched");
        assert_eq!(c[ldc], 14.0);
        assert_eq!(c[2 * ldc], 15.0);
        assert_eq!(c[3 * ldc], 10.0, "column past nr untouched");
    }
}
