//! Merge permutation for two sorted runs (LAPACK `dlamrg` analogue).

/// Given `d` whose first `n1` entries are ascending and whose remaining
/// entries are ascending, return the permutation `perm` such that
/// `d[perm[0]] <= d[perm[1]] <= ...` — i.e. `perm[i]` is the index in `d`
/// of the `i`-th smallest value. The merge is stable: on ties the entry
/// from the first run comes first.
pub fn merge_perm(d: &[f64], n1: usize) -> Vec<usize> {
    let n = d.len();
    assert!(n1 <= n, "first run longer than the array");
    let mut perm = Vec::with_capacity(n);
    let (mut i, mut j) = (0, n1);
    while i < n1 && j < n {
        if d[i] <= d[j] {
            perm.push(i);
            i += 1;
        } else {
            perm.push(j);
            j += 1;
        }
    }
    perm.extend(i..n1);
    perm.extend(j..n);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_sorted_by_perm(d: &[f64], perm: &[usize]) -> bool {
        perm.windows(2).all(|w| d[w[0]] <= d[w[1]])
    }

    #[test]
    fn merges_two_runs() {
        let d = [1.0, 3.0, 5.0, 2.0, 4.0, 6.0];
        let p = merge_perm(&d, 3);
        assert_eq!(p, vec![0, 3, 1, 4, 2, 5]);
        assert!(is_sorted_by_perm(&d, &p));
    }

    #[test]
    fn handles_empty_runs() {
        let d = [1.0, 2.0];
        assert_eq!(merge_perm(&d, 0), vec![0, 1]);
        assert_eq!(merge_perm(&d, 2), vec![0, 1]);
        assert_eq!(merge_perm(&[], 0), Vec::<usize>::new());
    }

    #[test]
    fn stable_on_ties() {
        let d = [1.0, 2.0, 1.0, 2.0];
        let p = merge_perm(&d, 2);
        assert_eq!(p, vec![0, 2, 1, 3]);
    }

    #[test]
    fn is_a_bijection() {
        let d = [5.0, 7.0, 0.5, 0.6, 0.7];
        let mut p = merge_perm(&d, 2);
        assert!(is_sorted_by_perm(&d, &p));
        p.sort_unstable();
        assert_eq!(p, vec![0, 1, 2, 3, 4]);
    }
}
