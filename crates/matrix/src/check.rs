//! Accuracy metrics used by the paper's Figure 9: eigenvector orthogonality
//! and eigen-decomposition residual.

use crate::blas::{axpy, dot, nrm2};
use crate::matrix::Matrix;

/// Orthogonality error `max |(VᵀV − I)_{ij}| / n` (Figure 9a's metric).
///
/// Computed column-pair-wise with dot products, which is cache-friendly in
/// column-major storage. O(n²·m) — intended for verification, not hot paths.
pub fn orthogonality_error(v: &Matrix) -> f64 {
    let n = v.cols();
    if n == 0 {
        return 0.0;
    }
    let mut worst = 0.0f64;
    for j in 0..n {
        let cj = v.col(j);
        for i in 0..=j {
            let g = dot(v.col(i), cj) - if i == j { 1.0 } else { 0.0 };
            worst = worst.max(g.abs());
        }
    }
    worst / n as f64
}

/// Residual error `max_i ||A v_i − λ_i v_i||₂ / (||A|| · n)` for a linear
/// operator given as a matvec closure (Figure 9b's metric).
///
/// `matvec(x, y)` must compute `y = A x`; `norm_a` is any consistent norm of
/// A (the callers use the max-norm of the tridiagonal).
pub fn residual_error(
    n: usize,
    matvec: impl Fn(&[f64], &mut [f64]),
    lam: &[f64],
    v: &Matrix,
    norm_a: f64,
) -> f64 {
    assert_eq!(v.rows(), n);
    assert_eq!(v.cols(), lam.len());
    if n == 0 {
        return 0.0;
    }
    let denom = norm_a.max(f64::MIN_POSITIVE) * n as f64;
    let mut y = vec![0.0; n];
    let mut worst = 0.0f64;
    for (j, &l) in lam.iter().enumerate() {
        let vj = v.col(j);
        matvec(vj, &mut y);
        axpy(-l, vj, &mut y);
        worst = worst.max(nrm2(&y));
    }
    worst / denom
}

/// Residual error for a dense symmetric matrix `A`: the same metric as
/// [`residual_error`] with `matvec = A·x` and `norm_a = max|A_ij|`.
pub fn symmetric_residual_error(a: &Matrix, lam: &[f64], v: &Matrix) -> f64 {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    residual_error(
        n,
        |x, y| crate::blas::gemv(n, n, 1.0, a.as_slice(), n, x, 0.0, y),
        lam,
        v,
        a.max_abs(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_perfectly_orthogonal() {
        assert_eq!(orthogonality_error(&Matrix::identity(5)), 0.0);
    }

    #[test]
    fn skewed_basis_reports_error() {
        let mut v = Matrix::identity(3);
        v[(0, 1)] = 0.3; // column 1 no longer orthogonal to column 0
        let e = orthogonality_error(&v);
        assert!(e > 0.09 / 3.0, "{e}");
    }

    #[test]
    fn exact_eigenpairs_have_zero_residual() {
        // A = diag(1, 2, 3), V = I.
        let a = Matrix::from_fn(3, 3, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
        let v = Matrix::identity(3);
        let r = symmetric_residual_error(&a, &[1.0, 2.0, 3.0], &v);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn wrong_eigenvalue_has_nonzero_residual() {
        let a = Matrix::from_fn(2, 2, |i, j| if i == j { 1.0 } else { 0.0 });
        let v = Matrix::identity(2);
        let r = symmetric_residual_error(&a, &[1.0, 1.5], &v);
        assert!(r > 0.1, "{r}");
    }
}
