//! Feature-gated global kernel counters for solver observability.
//!
//! A fixed set of named monotonic counters that the numerical kernels bump
//! as they run (secular iterations, rescue-path activations, GEMM volume —
//! the quantities behind the paper's Figures 5–6 deflation narrative and
//! Table I cost model). Counters are process-global `AtomicU64`s with
//! `Relaxed` increments: kernels batch their adds (one `add` per solve or
//! per panel, never per inner-loop step), so the hot paths see at most a
//! handful of uncontended atomic RMWs.
//!
//! When the `metrics` feature is off every function here compiles to a
//! no-op ([`add`] is inlined away and [`snapshot`] returns zeros), so call
//! sites need no `cfg` of their own — the same idiom as
//! [`failpoints`](crate::failpoints).
//!
//! Counters are global while Rust tests run on parallel threads, so tests
//! must only assert *monotonic* properties (value after ≥ value before +
//! own contribution) — concurrent solves can only add, never subtract.

/// The registered counter names, in snapshot order.
pub const NAMES: [&str; 11] = [
    "secular.root_solves",
    "secular.iters",
    "secular.bisection_rescues",
    "steqr.sweeps",
    "steqr.exceptional_rescues",
    "gemm.calls",
    "gemm.flops",
    "update.structured_merges",
    "update.structured_blocks",
    "update.structured_rank",
    "update.flops_saved",
];

fn index_of(name: &str) -> usize {
    NAMES
        .iter()
        .position(|n| *n == name)
        // The analyzer reaches this only through a name collision on `get`,
        // and a typo'd counter name is a programming error worth a loud panic.
        // xtask-lint: allow(hot-path) — cold diagnostics lookup
        .unwrap_or_else(|| panic!("unknown metrics counter '{name}'"))
}

/// Point-in-time copy of every counter. Obtained from [`snapshot`]; two
/// snapshots bracket a region of interest and [`CounterSnapshot::delta`]
/// isolates its contribution (other threads' increments still leak into a
/// delta — see the module docs on monotonic assertions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    values: [u64; NAMES.len()],
}

impl CounterSnapshot {
    /// Value of `name` in this snapshot.
    pub fn get(&self, name: &str) -> u64 {
        self.values[index_of(name)]
    }

    /// Counter-wise saturating difference `self − earlier`.
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut values = [0u64; NAMES.len()];
        for (i, v) in values.iter_mut().enumerate() {
            *v = self.values[i].saturating_sub(earlier.values[i]);
        }
        CounterSnapshot { values }
    }

    /// Iterate `(name, value)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        NAMES.iter().copied().zip(self.values.iter().copied())
    }
}

#[cfg(feature = "metrics")]
mod imp {
    use super::{index_of, CounterSnapshot, NAMES};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    static VALUES: [AtomicU64; NAMES.len()] = [ZERO; NAMES.len()];

    /// Add `v` to the named counter.
    #[inline]
    pub fn add(name: &str, v: u64) {
        VALUES[index_of(name)].fetch_add(v, Ordering::Relaxed);
    }

    /// Current value of the named counter.
    pub fn get(name: &str) -> u64 {
        VALUES[index_of(name)].load(Ordering::Relaxed)
    }

    /// Copy every counter.
    pub fn snapshot() -> CounterSnapshot {
        let mut snap = CounterSnapshot::default();
        for (slot, v) in snap.values.iter_mut().zip(VALUES.iter()) {
            *slot = v.load(Ordering::Relaxed);
        }
        snap
    }

    /// Zero every counter. Intended for single-threaded contexts (a CLI
    /// run, a bench); racing solves on other threads lose increments.
    pub fn reset_all() {
        for v in &VALUES {
            v.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(not(feature = "metrics"))]
mod imp {
    //! No-op stand-ins: the optimizer erases every call site.
    use super::{index_of, CounterSnapshot};

    /// No-op when the `metrics` feature is off.
    #[inline(always)]
    pub fn add(_name: &str, _v: u64) {}

    /// Always 0 when the `metrics` feature is off (still validates `name`).
    #[inline]
    pub fn get(name: &str) -> u64 {
        let _ = index_of(name);
        0
    }

    /// All zeros when the `metrics` feature is off.
    #[inline]
    pub fn snapshot() -> CounterSnapshot {
        CounterSnapshot::default()
    }

    /// No-op when the `metrics` feature is off.
    #[inline(always)]
    pub fn reset_all() {}
}

pub use imp::*;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_lists_every_name() {
        let snap = snapshot();
        assert_eq!(snap.iter().count(), NAMES.len());
        for (name, _) in snap.iter() {
            assert!(NAMES.contains(&name));
        }
    }

    #[test]
    #[should_panic(expected = "unknown metrics counter")]
    fn unknown_name_panics() {
        get("no.such.counter");
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn add_is_visible_and_monotonic() {
        let before = snapshot();
        add("gemm.calls", 3);
        add("gemm.flops", 1000);
        let after = snapshot();
        let d = after.delta(&before);
        assert!(d.get("gemm.calls") >= 3);
        assert!(d.get("gemm.flops") >= 1000);
        assert!(after.get("gemm.calls") >= before.get("gemm.calls") + 3);
    }

    #[cfg(not(feature = "metrics"))]
    #[test]
    fn disabled_counters_stay_zero() {
        add("gemm.calls", 7);
        assert_eq!(get("gemm.calls"), 0);
        assert_eq!(snapshot(), CounterSnapshot::default());
    }
}
