//! Persistent worker pool executing 2-D C-tile jobs for `gemm_par`.
//!
//! The seed implementation spawned a fresh `thread::scope` per parallel
//! GEMM; at the merge sizes the eigensolver produces, thread startup was a
//! measurable fraction of the kernel. This pool spawns
//! `available_parallelism - 1` workers once (the calling thread is always
//! the final executor, so one-core machines still get two lanes of
//! progress) and feeds them jobs whose tiles are claimed with a single
//! `fetch_add` — no per-call allocation beyond one `Arc`.
//!
//! A panicking tile is contained with `catch_unwind` and re-raised on the
//! calling thread after the job drains, so a poisoned job can never wedge
//! the pool or unwind through a worker loop.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One fan-out of `total` tiles over closure `f`.
///
/// `f` points at a stack-owned closure in [`run_tiles`]; it is only ever
/// dereferenced between a successful tile claim and the matching `pending`
/// decrement, and `run_tiles` does not return until `pending` reaches zero,
/// so the pointee outlives every dereference.
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    pending: AtomicUsize,
    total: usize,
    panicked: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: the `f` pointee is kept alive by run_tiles until every tile has
// retired (`pending` reaches zero before run_tiles returns), and the
// pointee itself is `Sync`, so concurrent `&*f` calls are sound.
unsafe impl Send for Job {}
// SAFETY: all mutable state in Job is atomics or lock-protected; `f` is
// only dereferenced shared (see Send justification above).
unsafe impl Sync for Job {}

impl Job {
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.total
    }

    /// Claim and run tiles until none remain.
    fn execute(&self) {
        loop {
            let t = self.next.fetch_add(1, Ordering::Relaxed);
            if t >= self.total {
                return;
            }
            // SAFETY: run_tiles blocks until `pending` hits zero, so the
            // closure behind `f` outlives every dereference made here.
            let f = unsafe { &*self.f };
            if catch_unwind(AssertUnwindSafe(|| f(t))).is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                *lock(&self.done) = true;
                self.done_cv.notify_all();
            }
        }
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_cv: Condvar,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A panicking tile poisons nothing observable: job state is atomic and
    // the boolean guarded here is monotone.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn pool() -> &'static PoolShared {
    static POOL: OnceLock<&'static PoolShared> = OnceLock::new();
    POOL.get_or_init(|| {
        // One-time pool construction inside OnceLock::get_or_init; never
        // re-entered on the steady-state path.
        // xtask-lint: allow(hot-path) — init-once pool allocation
        let shared: &'static PoolShared = Box::leak(Box::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
        }));
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .saturating_sub(1)
            .max(1);
        for w in 0..workers {
            std::thread::Builder::new()
                // xtask-lint: allow(hot-path) — one-time pool-spawn naming
                .name(format!("dcst-gemm-{w}"))
                .spawn(move || worker_loop(shared))
                // Failing to spawn the pool at first use is unrecoverable.
                // xtask-lint: allow(hot-path) — deliberate startup panic
                .expect("spawn gemm pool worker");
        }
        shared
    })
}

/// Number of pool worker threads (excluding the calling thread).
pub fn pool_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .saturating_sub(1)
        .max(1)
}

fn worker_loop(shared: &'static PoolShared) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                while q.front().is_some_and(|j| j.exhausted()) {
                    q.pop_front();
                }
                match q.front() {
                    Some(j) => break j.clone(),
                    None => q = shared.work_cv.wait(q).unwrap_or_else(|e| e.into_inner()),
                }
            }
        };
        job.execute();
    }
}

/// Run `f(0..tiles)` across the pool plus the calling thread; returns once
/// every tile has finished. Re-raises a panic from any tile.
pub(crate) fn run_tiles(tiles: usize, f: &(dyn Fn(usize) + Sync)) {
    if tiles == 0 {
        return;
    }
    let shared = pool();
    // SAFETY: erases the borrow lifetime of `f`. Sound because this
    // function does not return until every tile finished (`wait_done`
    // below), so the 'static-pretending pointer never outlives the borrow.
    let f_static: *const (dyn Fn(usize) + Sync + 'static) = unsafe {
        std::mem::transmute::<
            *const (dyn Fn(usize) + Sync + '_),
            *const (dyn Fn(usize) + Sync + 'static),
        >(f as *const _)
    };
    let job = Arc::new(Job {
        f: f_static,
        next: AtomicUsize::new(0),
        pending: AtomicUsize::new(tiles),
        total: tiles,
        panicked: AtomicBool::new(false),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    {
        let mut q = lock(&shared.queue);
        q.push_back(job.clone());
        shared.work_cv.notify_all();
    }
    job.execute();
    let mut done = lock(&job.done);
    while !*done {
        done = job.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
    }
    drop(done);
    if job.panicked.load(Ordering::Relaxed) {
        // Only reached after a worker already panicked.
        // xtask-lint: allow(hot-path) — deliberate re-raise of a tile panic
        panic!("gemm_par tile panicked on a pool worker");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_tile_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        run_tiles(hits.len(), &|t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_and_repeated_jobs_complete() {
        for round in 0..20 {
            let sum = AtomicUsize::new(0);
            run_tiles(round + 1, &|t| {
                sum.fetch_add(t + 1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), (round + 1) * (round + 2) / 2);
        }
    }

    #[test]
    fn concurrent_callers_all_finish() {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let count = AtomicUsize::new(0);
                    run_tiles(64, &|_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                    assert_eq!(count.load(Ordering::Relaxed), 64);
                });
            }
        });
    }

    #[test]
    fn panicking_tile_is_reraised_and_pool_survives() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_tiles(8, &|t| {
                if t == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "tile panic must surface to the caller");
        // The pool must still execute subsequent jobs.
        let ok = AtomicUsize::new(0);
        run_tiles(8, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 8);
    }
}
