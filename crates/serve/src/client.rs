//! A minimal blocking client for the daemon's line-delimited JSON
//! protocol — enough for the CLI's `dcst request` one-shot mode and the
//! concurrency test harness; real clients can speak the protocol with
//! nothing but a TCP socket.

use dcst_runtime::jsonv::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a [`crate::Server`]. Requests are written as JSON
/// lines; [`Client::recv`] reads whatever response completes next (the
/// daemon interleaves responses in completion order, tagged by `id`).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        // Request/response over small lines: Nagle only adds stalls.
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Send one request line (the newline is appended here). The line and
    /// newline go out in a single write so Nagle never strands the
    /// terminator behind an unacknowledged segment.
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        self.writer.write_all(buf.as_bytes())?;
        self.writer.flush()
    }

    /// Read the next non-empty response line verbatim. `Ok(None)` means
    /// the server closed the connection.
    pub fn recv_raw(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                return Ok(Some(trimmed.to_string()));
            }
        }
    }

    /// Read the next response line and parse it. `Ok(None)` means the
    /// server closed the connection.
    pub fn recv(&mut self) -> std::io::Result<Option<Json>> {
        match self.recv_raw()? {
            None => Ok(None),
            Some(line) => jsonv::parse(&line).map(Some).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed response from server: {e}"),
                )
            }),
        }
    }

    /// Send one request and block for the next response. Only safe when
    /// this connection has at most one request outstanding; pipelined
    /// callers must match `id` tags themselves via [`Client::recv`].
    pub fn call(&mut self, line: &str) -> std::io::Result<Json> {
        self.send(line)?;
        self.recv()?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })
    }
}
