//! Eigensolver-as-a-service: the `dcst serve` batch daemon.
//!
//! A long-lived server owning ONE persistent task-flow
//! `dcst_runtime::Runtime`: clients connect over TCP and exchange
//! line-delimited JSON — one request object per line in, one response
//! object per line out, parsed with the workspace's own `jsonv` (no
//! external dependencies). Each solve request is submitted as an
//! independent task graph in its own runtime scope
//! ([`dcst_core::PendingSolve`]), so concurrent requests interleave on
//! the shared worker pool, a failed or cancelled request never poisons
//! its neighbours, and a `cancel` verb maps onto the scope's
//! DAG-cancellation latch.
//!
//! The service layer adds what a solver library cannot: **admission
//! control** (a bounded in-flight count plus the pool's ready-queue
//! high-water gauge shed load with a typed `busy` error instead of
//! queueing unboundedly), **priority classes** (a `"priority": "high"`
//! request rides the pool's high-priority injector lane end to end),
//! a **fused batch verb** (many small problems submitted before any is
//! waited on, so their panel tasks share the worker stream), a
//! **metrics verb** exposing the scheduler-counter and kernel-counter
//! registries, and optional **per-request Chrome traces**.
//!
//! See `DESIGN.md` ("Service layer") for the protocol grammar and
//! `tests/serve_protocol.rs` for the concurrency/fault harness.

mod client;
pub mod protocol;
mod server;

pub use client::Client;
pub use server::{Server, ServerConfig};
