//! The daemon: accept loop, per-connection protocol threads, admission
//! control, and per-request solve jobs on one shared runtime.
//!
//! Threading model (hand-rolled, no async runtime):
//!
//! * one accept thread;
//! * one reader thread per connection, which parses request lines and
//!   answers the cheap verbs (`ping`, `metrics`, `cancel`, `shutdown`)
//!   inline;
//! * one short-lived job thread per admitted `solve`/`batch`, which
//!   submits the task graph into its own scope of the shared
//!   [`Runtime`], waits, and writes the tagged response — so the reader
//!   keeps servicing `cancel` verbs while solves are in flight.
//!
//! Responses are therefore interleaved in completion order, each tagged
//! with the request's `id`. Admission is a compare-and-swap on the
//! in-flight count plus a read of the pool's ready-queue depth gauge;
//! over either limit the request is shed with a typed `busy` error and
//! *nothing* is submitted to the runtime.

use crate::protocol::{self, dc_error_code, error_response, Problem, Request, WireError};
use dcst_core::{DcError, DcOptions, DcStats, Eigen, PendingSolve, TaskFlowDc};
use dcst_runtime::{CancelHandle, Runtime};
use dcst_tridiag::SymTridiag;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

/// Daemon tuning. `Default` suits the test harness: loopback, ephemeral
/// port, and an in-flight bound matched to a small pool.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads of the shared runtime.
    pub threads: usize,
    /// Admission bound on concurrently admitted `solve`/`batch` requests;
    /// the `cur >= max` request is shed with `busy`.
    pub max_inflight: usize,
    /// Admission bound on the pool's ready-queue depth gauge (the PR-5
    /// high-water counter; always 0 without the `metrics` feature, so
    /// this gate only bites in metrics builds).
    pub max_ready_depth: u64,
    /// Largest accepted matrix order; larger specs are shed with
    /// `oversized` before any O(n²) allocation.
    pub max_n: usize,
    /// Largest accepted request line in bytes; longer lines are drained
    /// and answered with `oversized`.
    pub max_line: usize,
    /// Solver tuning shared by every request (`mode` and `threads` are
    /// overridden per request / by the pool).
    pub opts: DcOptions,
    /// Record every request's tasks and attach a Chrome trace to
    /// responses that ask for one (`"trace": true`).
    pub trace_requests: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            max_inflight: 8,
            max_ready_depth: 1 << 14,
            max_n: 8192,
            max_line: 4 << 20,
            opts: DcOptions::default(),
            trace_requests: false,
        }
    }
}

/// Per-request cancellation bookkeeping, keyed `(connection, request id)`.
/// `Queued` covers the window between admission (reader thread) and
/// submission (job thread): a cancel landing in that window is recorded
/// and honored the moment the graph is submitted.
enum JobState {
    Queued { cancel_requested: bool },
    Running(Vec<CancelHandle>),
}

struct Inner {
    cfg: ServerConfig,
    rt: Runtime,
    inflight: AtomicUsize,
    accepted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    cancelled: AtomicU64,
    jobs: Mutex<HashMap<(u64, u64), JobState>>,
    shutdown: AtomicBool,
}

impl Inner {
    /// Admission control: reserve an in-flight slot or shed with `busy`.
    fn try_admit(&self) -> Result<(), WireError> {
        let mut cur = self.inflight.load(Ordering::SeqCst);
        loop {
            if cur >= self.cfg.max_inflight {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(WireError::new(
                    "busy",
                    format!(
                        "{cur} request(s) in flight (limit {})",
                        self.cfg.max_inflight
                    ),
                ));
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        let depth = self.rt.ready_queue_depth();
        if depth > self.cfg.max_ready_depth {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(WireError::new(
                "busy",
                format!(
                    "ready-queue depth {depth} over high-water {}",
                    self.cfg.max_ready_depth
                ),
            ));
        }
        self.accepted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Swap a job's `Queued` placeholder for its live cancel handles.
    /// Returns true when a cancel already arrived for it.
    fn activate_job(&self, key: (u64, u64), handles: Vec<CancelHandle>) -> bool {
        let mut jobs = self.jobs.lock().unwrap();
        let pre_cancelled = matches!(
            jobs.get(&key),
            Some(JobState::Queued {
                cancel_requested: true
            })
        );
        jobs.insert(key, JobState::Running(handles));
        pre_cancelled
    }

    /// `cancel` verb: flip a queued job's flag or fire the running job's
    /// handles. Returns whether the id named a live job.
    fn cancel_job(&self, key: (u64, u64)) -> bool {
        let mut jobs = self.jobs.lock().unwrap();
        match jobs.get_mut(&key) {
            Some(JobState::Queued { cancel_requested }) => {
                *cancel_requested = true;
                true
            }
            Some(JobState::Running(handles)) => {
                for h in handles {
                    h.cancel();
                }
                true
            }
            None => false,
        }
    }

    /// Retire a finished job: free its admission slot and table entry.
    fn finish_job(&self, key: (u64, u64)) {
        self.jobs.lock().unwrap().remove(&key);
        self.inflight.fetch_sub(1, Ordering::SeqCst);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    fn metrics_response(&self) -> String {
        let rm = self.rt.runtime_metrics();
        let kernel: Vec<String> = dcst_matrix::metrics::snapshot()
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", protocol::escape(k)))
            .collect();
        format!(
            "{{\"ok\":true,\"metrics\":{{\
             \"workers\":{},\"tasks_executed\":{},\"steals_succeeded\":{},\
             \"priority_hits\":{},\"parks\":{},\"max_queue_depth\":{},\
             \"ready_depth\":{},\"inflight\":{},\"accepted\":{},\
             \"completed\":{},\"shed\":{},\"cancelled\":{},\
             \"kernel\":{{{}}}}}}}",
            rm.workers.len(),
            rm.tasks_executed(),
            rm.steals_succeeded(),
            rm.priority_hits(),
            rm.parks(),
            rm.max_queue_depth,
            self.rt.ready_queue_depth(),
            self.inflight.load(Ordering::SeqCst),
            self.accepted.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.cancelled.load(Ordering::Relaxed),
            kernel.join(",")
        )
    }
}

/// A running daemon. Dropping (or [`Server::join`] after
/// [`Server::shutdown`]) stops the accept loop; in-flight jobs complete
/// on the shared runtime before it is torn down.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving. Returns once the listener is live; the
    /// bound address (with the resolved ephemeral port) is
    /// [`Server::addr`].
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let rt = Runtime::new(cfg.threads);
        if cfg.trace_requests {
            rt.enable_tracing();
        }
        let inner = Arc::new(Inner {
            cfg,
            rt,
            inflight: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            jobs: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        });
        let accept_inner = inner.clone();
        let accept = thread::spawn(move || accept_loop(listener, accept_inner));
        Ok(Server {
            inner,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolved ephemeral port included).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the accept loop to stop (idempotent). Live connections finish
    /// their current requests; new connections are refused.
    pub fn shutdown(&self) {
        if !self.inner.shutdown.swap(true, Ordering::SeqCst) {
            // Poke the blocking accept() so it observes the flag.
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Block until the accept loop exits (after [`Server::shutdown`] or a
    /// client's `shutdown` verb).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    let mut conn_id = 0u64;
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Interactive request/response protocol: never trade latency for
        // segment coalescing.
        let _ = stream.set_nodelay(true);
        conn_id += 1;
        let conn_inner = inner.clone();
        thread::spawn(move || handle_conn(stream, conn_inner, conn_id));
    }
}

/// Serialize response writes from the reader and all job threads of one
/// connection.
type SharedWriter = Arc<Mutex<TcpStream>>;

fn write_line(writer: &SharedWriter, line: &str) {
    // One write_all per response: a separate trailing-newline write makes
    // a tiny second TCP segment that Nagle holds back until the previous
    // segment is ACKed — on an otherwise idle connection that is a
    // ~40 ms delayed-ACK stall per response.
    let mut buf = String::with_capacity(line.len() + 1);
    buf.push_str(line);
    buf.push('\n');
    // A vanished client is not a server error: drop the response.
    let mut w = writer.lock().unwrap();
    let _ = w.write_all(buf.as_bytes());
    let _ = w.flush();
}

/// Read one `\n`-terminated request line of at most `max` bytes.
/// `Ok(None)` is EOF; `Ok(Some(false))` means the line blew the cap and
/// was drained so the stream stays line-synchronized.
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    max: usize,
    buf: &mut String,
) -> std::io::Result<Option<bool>> {
    buf.clear();
    let n = (&mut *reader).take(max as u64 + 1).read_line(buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.ends_with('\n') || buf.len() <= max {
        return Ok(Some(true));
    }
    // Cap blown mid-line: discard up to the next newline.
    let mut scratch = String::new();
    loop {
        scratch.clear();
        let n = (&mut *reader).take(1 << 16).read_line(&mut scratch)?;
        if n == 0 || scratch.ends_with('\n') {
            return Ok(Some(false));
        }
    }
}

fn handle_conn(stream: TcpStream, inner: Arc<Inner>, conn: u64) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let writer: SharedWriter = Arc::new(Mutex::new(stream));
    let mut line = String::new();
    loop {
        match read_request_line(&mut reader, inner.cfg.max_line, &mut line) {
            Err(_) | Ok(None) => break,
            Ok(Some(false)) => {
                write_line(
                    &writer,
                    &error_response(
                        None,
                        &WireError::new(
                            "oversized",
                            format!("request line over {} bytes", inner.cfg.max_line),
                        ),
                    ),
                );
                continue;
            }
            Ok(Some(true)) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let (id, req) = protocol::parse_request(trimmed);
        match req {
            Err(e) => write_line(&writer, &error_response(id, &e)),
            Ok(Request::Ping) => write_line(&writer, &ok_line(id, "\"pong\":true")),
            Ok(Request::Metrics) => write_line(&writer, &inner.metrics_response()),
            Ok(Request::Shutdown) => {
                write_line(&writer, &ok_line(id, "\"shutdown\":true"));
                inner.shutdown.store(true, Ordering::SeqCst);
                // Poke accept() awake so it observes the flag; an
                // accepted socket's local address IS the listener's.
                if let Ok(addr) = writer.lock().unwrap().local_addr() {
                    let _ = TcpStream::connect(addr);
                }
            }
            Ok(Request::Cancel { id }) => {
                let hit = inner.cancel_job((conn, id));
                write_line(
                    &writer,
                    &format!("{{\"id\":{id},\"ok\":true,\"cancelled\":{hit}}}"),
                );
            }
            Ok(Request::Solve {
                id,
                problem,
                priority,
                vectors,
                check,
                trace,
            }) => {
                if let Err(e) = admit(&inner, conn, id) {
                    write_line(&writer, &error_response(Some(id), &e));
                    continue;
                }
                let job_inner = inner.clone();
                let job_writer = writer.clone();
                thread::spawn(move || {
                    let resp = solve_response(
                        &job_inner, conn, id, &problem, priority, vectors, check, trace,
                    );
                    job_inner.finish_job((conn, id));
                    write_line(&job_writer, &resp);
                });
            }
            Ok(Request::Batch {
                id,
                problems,
                priority,
                check,
            }) => {
                if let Err(e) = admit(&inner, conn, id) {
                    write_line(&writer, &error_response(Some(id), &e));
                    continue;
                }
                let job_inner = inner.clone();
                let job_writer = writer.clone();
                thread::spawn(move || {
                    let resp = batch_response(&job_inner, conn, id, &problems, priority, check);
                    job_inner.finish_job((conn, id));
                    write_line(&job_writer, &resp);
                });
            }
        }
    }
    // Client gone: cancel whatever it left in flight so abandoned work
    // frees its admission slots promptly.
    let keys: Vec<(u64, u64)> = inner
        .jobs
        .lock()
        .unwrap()
        .keys()
        .filter(|(c, _)| *c == conn)
        .copied()
        .collect();
    for key in keys {
        inner.cancel_job(key);
    }
}

/// Reserve an admission slot and seed the job table. A duplicate live id
/// on the same connection is a bad request (responses would be
/// indistinguishable).
fn admit(inner: &Arc<Inner>, conn: u64, id: u64) -> Result<(), WireError> {
    {
        let jobs = inner.jobs.lock().unwrap();
        if jobs.contains_key(&(conn, id)) {
            return Err(WireError::bad(format!(
                "request id {id} is still in flight on this connection"
            )));
        }
    }
    inner.try_admit()?;
    inner.jobs.lock().unwrap().insert(
        (conn, id),
        JobState::Queued {
            cancel_requested: false,
        },
    );
    Ok(())
}

fn ok_line(id: Option<u64>, body: &str) -> String {
    match id {
        Some(id) => format!("{{\"id\":{id},\"ok\":true,{body}}}"),
        None => format!("{{\"ok\":true,{body}}}"),
    }
}

fn dc_error_response(id: u64, e: &DcError) -> String {
    error_response(Some(id), &WireError::new(dc_error_code(e), e.to_string()))
}

/// One problem's success payload (shared by `solve` and `batch` items).
fn result_body(t: &SymTridiag, eig: &Eigen, stats: &DcStats, vectors: bool, check: bool) -> String {
    let mut body = format!(
        "\"n\":{},\"k\":{},\"deflation\":{},\"values\":{}",
        t.n(),
        eig.values.len(),
        protocol::num(stats.overall_deflation()),
        protocol::num_arr(&eig.values)
    );
    if check && eig.vectors.cols() > 0 && eig.vectors.cols() == eig.values.len() {
        let orth = dcst_matrix::orthogonality_error(&eig.vectors);
        let res = dcst_matrix::residual_error(
            t.n(),
            |x, y| t.matvec(x, y),
            &eig.values,
            &eig.vectors,
            t.max_norm(),
        );
        body.push_str(&format!(
            ",\"orth\":{},\"residual\":{}",
            protocol::num(orth),
            protocol::num(res)
        ));
    }
    if vectors {
        // Column-major, matching Matrix's storage.
        body.push_str(&format!(
            ",\"vectors\":{}",
            protocol::num_arr(eig.vectors.as_slice())
        ));
    }
    body
}

/// Build, submit, wait, and serialize one solve. The job's cancel
/// handles go live between submission and wait, so a `cancel` verb
/// observed by the reader thread lands on this scope's latch.
#[allow(clippy::too_many_arguments)]
fn solve_response(
    inner: &Arc<Inner>,
    conn: u64,
    id: u64,
    problem: &Problem,
    priority: bool,
    vectors: bool,
    check: bool,
    trace: bool,
) -> String {
    if problem.matrix.n() > inner.cfg.max_n {
        return error_response(
            Some(id),
            &WireError::new(
                "oversized",
                format!(
                    "matrix order {} over the server limit {}",
                    problem.matrix.n(),
                    inner.cfg.max_n
                ),
            ),
        );
    }
    let t = match problem.matrix.build() {
        Ok(t) => t,
        Err(e) => return error_response(Some(id), &e),
    };
    let solver = TaskFlowDc::new(DcOptions {
        mode: problem.mode,
        threads: inner.cfg.threads,
        ..inner.cfg.opts
    });
    let submitted = if priority {
        solver.submit_priority(&t, &inner.rt)
    } else {
        solver.submit(&t, &inner.rt)
    };
    let pending = match submitted {
        Ok(p) => p,
        Err(e) => return dc_error_response(id, &e),
    };
    if inner.activate_job((conn, id), vec![pending.cancel_handle()]) {
        pending.cancel();
    }
    match finish_pending(inner, pending, trace) {
        Ok((eig, stats, trace_json)) => {
            let mut body = result_body(&t, &eig, &stats, vectors, check);
            if let Some(tj) = trace_json {
                body.push_str(&format!(",\"trace\":\"{}\"", protocol::escape(&tj)));
            }
            ok_line(Some(id), &body)
        }
        Err(e) => {
            if matches!(e, DcError::Cancelled) {
                inner.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            dc_error_response(id, &e)
        }
    }
}

/// Wait on a pending solve, harvesting its scope trace (when the server
/// records traces) whether it succeeded or not — an unharvested scope
/// would leak records into the shared trace buffer forever.
fn finish_pending(
    inner: &Arc<Inner>,
    pending: PendingSolve<'_>,
    want_trace: bool,
) -> Result<(Eigen, DcStats, Option<String>), DcError> {
    let waited = pending.scope().wait();
    let trace_json = if inner.cfg.trace_requests {
        let tr = inner.rt.take_scope_trace(pending.scope());
        want_trace.then(|| tr.to_chrome_json())
    } else {
        None
    };
    waited?;
    let (eig, stats) = pending.wait()?;
    Ok((eig, stats, trace_json))
}

/// The fused batch path: submit every problem's graph before waiting on
/// any, so their panels share the pool's ready queue; all scopes are
/// registered for cancellation as one job.
fn batch_response(
    inner: &Arc<Inner>,
    conn: u64,
    id: u64,
    problems: &[Problem],
    priority: bool,
    check: bool,
) -> String {
    for p in problems {
        if p.matrix.n() > inner.cfg.max_n {
            return error_response(
                Some(id),
                &WireError::new(
                    "oversized",
                    format!(
                        "matrix order {} over the server limit {}",
                        p.matrix.n(),
                        inner.cfg.max_n
                    ),
                ),
            );
        }
    }
    let mut mats = Vec::with_capacity(problems.len());
    for p in problems {
        match p.matrix.build() {
            Ok(t) => mats.push(t),
            Err(e) => return error_response(Some(id), &e),
        }
    }
    // Submit everything, then register the whole fan of cancel handles.
    let mut pendings: Vec<Result<PendingSolve<'_>, DcError>> = Vec::with_capacity(mats.len());
    for (p, t) in problems.iter().zip(&mats) {
        let solver = TaskFlowDc::new(DcOptions {
            mode: p.mode,
            threads: inner.cfg.threads,
            ..inner.cfg.opts
        });
        pendings.push(if priority {
            solver.submit_priority(t, &inner.rt)
        } else {
            solver.submit(t, &inner.rt)
        });
    }
    let handles: Vec<CancelHandle> = pendings
        .iter()
        .filter_map(|p| p.as_ref().ok().map(|p| p.cancel_handle()))
        .collect();
    if inner.activate_job((conn, id), handles) {
        for p in pendings.iter().flatten() {
            p.cancel();
        }
    }
    let mut results = Vec::with_capacity(pendings.len());
    let mut any_cancelled = false;
    for (p, t) in pendings.into_iter().zip(&mats) {
        let outcome =
            p.and_then(|p| finish_pending(inner, p, false).map(|(eig, stats, _)| (eig, stats)));
        results.push(match outcome {
            Ok((eig, stats)) => format!(
                "{{\"ok\":true,{}}}",
                result_body(t, &eig, &stats, false, check)
            ),
            Err(e) => {
                any_cancelled |= matches!(e, DcError::Cancelled);
                format!(
                    "{{\"ok\":false,\"error\":{{\"code\":\"{}\",\"message\":\"{}\"}}}}",
                    dc_error_code(&e),
                    protocol::escape(&e.to_string())
                )
            }
        });
    }
    if any_cancelled {
        inner.cancelled.fetch_add(1, Ordering::Relaxed);
    }
    ok_line(Some(id), &format!("\"results\":[{}]", results.join(",")))
}
