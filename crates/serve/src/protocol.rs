//! Wire protocol: request parsing and response serialization.
//!
//! One JSON object per line in each direction. Requests are parsed with
//! the runtime's `jsonv` recursive-descent parser; responses are written
//! with the hand-rolled serializers below (Rust's shortest-round-trip
//! `{}` float formatting, so eigenvalues survive the wire bit-exactly).
//!
//! Request grammar (members beyond these are ignored):
//!
//! ```text
//! {"op":"solve","id":ID,"matrix":M, "mode":MODE?, "priority":"high"?,
//!  "vectors":bool?, "check":bool?, "trace":bool?}
//! {"op":"batch","id":ID,"problems":[{"matrix":M,"mode":MODE?}, ...],
//!  "priority":"high"?, "check":bool?}
//! {"op":"cancel","id":ID}
//! {"op":"metrics"}   {"op":"ping"}   {"op":"shutdown"}
//!
//! M    = {"type":K,"n":N,"seed":S?}        (generated test matrix)
//!      | {"d":[...],"e":[...]}             (inline tridiagonal)
//! MODE = "full" (default) | "values" | {"subset":[il,iu]}
//! ```
//!
//! Responses: `{"id":ID,"ok":true, ...}` on success, or
//! `{"id":ID,"ok":false,"error":{"code":C,"message":S}}` with `C` one of
//! `parse`, `bad-request`, `unknown-op`, `oversized`, `busy`,
//! `cancelled`, `nonfinite`, `invalid-range`, `numerical`, `internal`.

use dcst_core::{DcError, SolveMode};
use dcst_runtime::jsonv::{self, Json};
use dcst_tridiag::gen::MatrixType;
use dcst_tridiag::SymTridiag;

/// Typed protocol error: a machine-readable code plus a human message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    pub code: &'static str,
    pub message: String,
}

impl WireError {
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }

    pub fn bad(message: impl Into<String>) -> Self {
        WireError::new("bad-request", message)
    }
}

/// Map a solver error onto the wire's error-code vocabulary.
pub fn dc_error_code(e: &DcError) -> &'static str {
    match e {
        DcError::NonFinite => "nonfinite",
        DcError::InvalidRange { .. } => "invalid-range",
        DcError::Cancelled => "cancelled",
        _ => "numerical",
    }
}

/// One problem of a solve or batch request.
#[derive(Clone, Debug)]
pub struct Problem {
    pub matrix: MatrixSpec,
    pub mode: SolveMode,
}

/// The matrix payload: a generator reference or inline data.
#[derive(Clone, Debug)]
pub enum MatrixSpec {
    Generated { ty: usize, n: usize, seed: u64 },
    Inline { d: Vec<f64>, e: Vec<f64> },
}

impl MatrixSpec {
    /// The matrix order, known before materialization — the oversized
    /// admission guard must reject without allocating O(n²).
    pub fn n(&self) -> usize {
        match self {
            MatrixSpec::Generated { n, .. } => *n,
            MatrixSpec::Inline { d, .. } => d.len(),
        }
    }

    /// Materialize the tridiagonal matrix.
    pub fn build(&self) -> Result<SymTridiag, WireError> {
        match self {
            MatrixSpec::Generated { ty, n, seed } => {
                let ty = MatrixType::from_index(*ty)
                    .ok_or_else(|| WireError::bad("matrix type must be 1..=15"))?;
                Ok(ty.generate(*n, *seed))
            }
            MatrixSpec::Inline { d, e } => {
                if d.is_empty() {
                    return Err(WireError::bad("inline matrix needs a non-empty \"d\""));
                }
                if e.len() + 1 != d.len() {
                    return Err(WireError::bad(format!(
                        "inline matrix needs len(e) == len(d) - 1, got {} and {}",
                        e.len(),
                        d.len()
                    )));
                }
                Ok(SymTridiag {
                    d: d.clone(),
                    e: e.clone(),
                })
            }
        }
    }
}

/// A parsed request line.
#[derive(Clone, Debug)]
pub enum Request {
    Solve {
        id: u64,
        problem: Problem,
        priority: bool,
        vectors: bool,
        check: bool,
        trace: bool,
    },
    Batch {
        id: u64,
        problems: Vec<Problem>,
        priority: bool,
        check: bool,
    },
    Cancel {
        id: u64,
    },
    Metrics,
    Ping,
    Shutdown,
}

fn as_bool(v: Option<&Json>, what: &str) -> Result<bool, WireError> {
    match v {
        None => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(WireError::bad(format!("\"{what}\" must be a boolean"))),
    }
}

fn as_u64(v: &Json, what: &str) -> Result<u64, WireError> {
    match v.as_num() {
        Some(x) if x >= 0.0 && x.fract() == 0.0 && x <= (1u64 << 53) as f64 => Ok(x as u64),
        _ => Err(WireError::bad(format!(
            "\"{what}\" must be a non-negative integer"
        ))),
    }
}

fn f64_array(v: &Json, what: &str) -> Result<Vec<f64>, WireError> {
    let items = v
        .as_arr()
        .ok_or_else(|| WireError::bad(format!("\"{what}\" must be an array of numbers")))?;
    items
        .iter()
        .map(|x| {
            x.as_num()
                .ok_or_else(|| WireError::bad(format!("\"{what}\" must contain only numbers")))
        })
        .collect()
}

fn parse_matrix(v: &Json) -> Result<MatrixSpec, WireError> {
    if let Some(d) = v.get("d") {
        let e = v
            .get("e")
            .ok_or_else(|| WireError::bad("inline matrix needs both \"d\" and \"e\""))?;
        return Ok(MatrixSpec::Inline {
            d: f64_array(d, "d")?,
            e: f64_array(e, "e")?,
        });
    }
    let ty = v
        .get("type")
        .ok_or_else(|| WireError::bad("\"matrix\" needs \"type\"/\"n\" or \"d\"/\"e\""))?;
    let n = v
        .get("n")
        .ok_or_else(|| WireError::bad("generated matrix needs \"n\""))?;
    let seed = match v.get("seed") {
        Some(s) => as_u64(s, "seed")?,
        None => 1,
    };
    Ok(MatrixSpec::Generated {
        ty: as_u64(ty, "type")? as usize,
        n: as_u64(n, "n")? as usize,
        seed,
    })
}

fn parse_mode(v: Option<&Json>) -> Result<SolveMode, WireError> {
    match v {
        None => Ok(SolveMode::Full),
        Some(Json::Str(s)) => match s.as_str() {
            "full" => Ok(SolveMode::Full),
            "values" => Ok(SolveMode::ValuesOnly),
            other => Err(WireError::bad(format!(
                "unknown mode '{other}' (want \"full\", \"values\", or {{\"subset\":[il,iu]}})"
            ))),
        },
        Some(obj) => {
            let range = obj
                .get("subset")
                .and_then(|r| r.as_arr())
                .ok_or_else(|| WireError::bad("mode object needs \"subset\":[il,iu]"))?;
            if range.len() != 2 {
                return Err(WireError::bad("\"subset\" wants exactly [il,iu]"));
            }
            let il = as_u64(&range[0], "subset il")? as usize;
            let iu = as_u64(&range[1], "subset iu")? as usize;
            Ok(SolveMode::Subset { il, iu })
        }
    }
}

fn parse_priority(v: Option<&Json>) -> Result<bool, WireError> {
    match v {
        None => Ok(false),
        Some(Json::Str(s)) => match s.as_str() {
            "high" => Ok(true),
            "normal" => Ok(false),
            other => Err(WireError::bad(format!(
                "unknown priority '{other}' (want \"normal\" or \"high\")"
            ))),
        },
        Some(_) => Err(WireError::bad("\"priority\" must be a string")),
    }
}

fn parse_problem(v: &Json) -> Result<Problem, WireError> {
    let matrix = parse_matrix(
        v.get("matrix")
            .ok_or_else(|| WireError::bad("request needs \"matrix\""))?,
    )?;
    Ok(Problem {
        matrix,
        mode: parse_mode(v.get("mode"))?,
    })
}

/// Parse one request line. The returned id (when the line carried one)
/// lets the caller tag even error responses for malformed requests.
pub fn parse_request(line: &str) -> (Option<u64>, Result<Request, WireError>) {
    let doc = match jsonv::parse(line) {
        Ok(doc) => doc,
        Err(e) => return (None, Err(WireError::new("parse", e.to_string()))),
    };
    let id = doc.get("id").and_then(|v| as_u64(v, "id").ok());
    let req = parse_request_doc(&doc);
    (id, req)
}

fn parse_request_doc(doc: &Json) -> Result<Request, WireError> {
    let op = doc
        .get("op")
        .and_then(|v| v.as_str())
        .ok_or_else(|| WireError::bad("request needs a string \"op\""))?;
    let need_id = || -> Result<u64, WireError> {
        as_u64(
            doc.get("id")
                .ok_or_else(|| WireError::bad(format!("\"{op}\" needs an \"id\"")))?,
            "id",
        )
    };
    match op {
        "solve" => Ok(Request::Solve {
            id: need_id()?,
            problem: parse_problem(doc)?,
            priority: parse_priority(doc.get("priority"))?,
            vectors: as_bool(doc.get("vectors"), "vectors")?,
            check: as_bool(doc.get("check"), "check")?,
            trace: as_bool(doc.get("trace"), "trace")?,
        }),
        "batch" => {
            let id = need_id()?;
            let problems = doc
                .get("problems")
                .and_then(|v| v.as_arr())
                .ok_or_else(|| WireError::bad("\"batch\" needs a \"problems\" array"))?;
            if problems.is_empty() {
                return Err(WireError::bad("\"problems\" must not be empty"));
            }
            Ok(Request::Batch {
                id,
                problems: problems
                    .iter()
                    .map(parse_problem)
                    .collect::<Result<_, _>>()?,
                priority: parse_priority(doc.get("priority"))?,
                check: as_bool(doc.get("check"), "check")?,
            })
        }
        "cancel" => Ok(Request::Cancel { id: need_id()? }),
        "metrics" => Ok(Request::Metrics),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(WireError::new(
            "unknown-op",
            format!("unknown op '{other}'"),
        )),
    }
}

// ---- response serialization ----

/// Escape a string for a JSON string literal (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A finite float as JSON (shortest round-trip form); non-finite → null,
/// which the error paths never produce but defense-in-depth demands.
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// `[x, y, ...]` for a float slice.
pub fn num_arr(xs: &[f64]) -> String {
    let mut out = String::with_capacity(xs.len() * 8 + 2);
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&num(*x));
    }
    out.push(']');
    out
}

/// The standard failure envelope.
pub fn error_response(id: Option<u64>, err: &WireError) -> String {
    let id_part = match id {
        Some(id) => format!("\"id\":{id},"),
        None => String::new(),
    };
    format!(
        "{{{id_part}\"ok\":false,\"error\":{{\"code\":\"{}\",\"message\":\"{}\"}}}}",
        err.code,
        escape(&err.message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_solve_request_variants() {
        let (id, req) = parse_request(
            r#"{"op":"solve","id":7,"matrix":{"type":4,"n":64,"seed":3},"mode":"values","priority":"high","check":true}"#,
        );
        assert_eq!(id, Some(7));
        match req.unwrap() {
            Request::Solve {
                id,
                problem,
                priority,
                vectors,
                check,
                trace,
            } => {
                assert_eq!(id, 7);
                assert_eq!(problem.mode, SolveMode::ValuesOnly);
                assert_eq!(problem.matrix.n(), 64);
                assert!(priority && check && !vectors && !trace);
            }
            other => panic!("wrong request: {other:?}"),
        }
        let (_, req) = parse_request(
            r#"{"op":"solve","id":1,"matrix":{"d":[2,2,2],"e":[1,1]},"mode":{"subset":[0,1]}}"#,
        );
        match req.unwrap() {
            Request::Solve { problem, .. } => {
                assert_eq!(problem.mode, SolveMode::Subset { il: 0, iu: 1 });
                let t = problem.matrix.build().unwrap();
                assert_eq!(t.n(), 3);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn typed_errors_for_malformed_requests() {
        for (line, code) in [
            ("{not json", "parse"),
            (r#"{"op":"frobnicate"}"#, "unknown-op"),
            (r#"{"op":"solve","matrix":{"type":4,"n":8}}"#, "bad-request"),
            (r#"{"op":"solve","id":1}"#, "bad-request"),
            (
                r#"{"op":"solve","id":1,"matrix":{"type":4,"n":8},"mode":"sideways"}"#,
                "bad-request",
            ),
            (r#"{"op":"cancel"}"#, "bad-request"),
            (r#"{"op":"batch","id":2,"problems":[]}"#, "bad-request"),
        ] {
            let (_, req) = parse_request(line);
            let err = req.expect_err(line);
            assert_eq!(err.code, code, "{line}");
        }
        // Inline length mismatch is a build-time error, not parse-time.
        let (_, req) = parse_request(r#"{"op":"solve","id":1,"matrix":{"d":[1,2],"e":[1,1,1]}}"#);
        match req.unwrap() {
            Request::Solve { problem, .. } => {
                assert_eq!(
                    problem.matrix.build().expect_err("mismatch").code,
                    "bad-request"
                );
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn response_floats_round_trip_through_jsonv() {
        let xs = [
            1.0 / 3.0,
            -2.2250738585072014e-308,
            6.02214076e23,
            -0.0,
            f64::MIN_POSITIVE,
        ];
        let doc = jsonv::parse(&num_arr(&xs)).unwrap();
        for (a, b) in xs.iter().zip(doc.as_arr().unwrap()) {
            assert_eq!(a.to_bits(), b.as_num().unwrap().to_bits());
        }
    }

    #[test]
    fn error_envelope_is_parseable() {
        let line = error_response(Some(3), &WireError::new("busy", "7 in flight \"now\""));
        let doc = jsonv::parse(&line).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            doc.get("error").unwrap().get("code").unwrap().as_str(),
            Some("busy")
        );
    }
}
