//! Determinism and concurrency guarantees of the public API.

use dcst::prelude::*;

fn opts() -> DcOptions {
    DcOptions {
        min_part: 16,
        nb: 16,
        threads: 2,
        ..DcOptions::default()
    }
}

#[test]
fn taskflow_is_bitwise_deterministic_across_runs() {
    // Panel partials are combined in a fixed order, so the result must be
    // bitwise identical no matter how the scheduler interleaved the tasks.
    let _q = dcst::matrix::failpoints::quiet();
    let t = MatrixType::Type3.generate(100, 77);
    let solver = TaskFlowDc::new(opts());
    let a = solver.solve(&t).unwrap();
    for _ in 0..3 {
        let b = solver.solve(&t).unwrap();
        assert_eq!(a.values, b.values, "eigenvalues bitwise equal");
        assert_eq!(
            a.vectors.as_slice(),
            b.vectors.as_slice(),
            "vectors bitwise equal"
        );
    }
}

#[test]
fn taskflow_matches_sequential_bitwise() {
    // Same kernels, same order ⇒ the parallel schedule cannot change a
    // single bit relative to the one-thread run.
    let _q = dcst::matrix::failpoints::quiet();
    let t = MatrixType::Type6.generate(90, 13);
    let par = TaskFlowDc::new(opts()).solve(&t).unwrap();
    let one = TaskFlowDc::new(DcOptions {
        threads: 1,
        ..opts()
    })
    .solve(&t)
    .unwrap();
    assert_eq!(par.values, one.values);
    assert_eq!(par.vectors.as_slice(), one.vectors.as_slice());
}

#[test]
fn solvers_are_shareable_across_threads() {
    // &TaskFlowDc is Sync: several user threads may solve concurrently.
    let solver = std::sync::Arc::new(TaskFlowDc::new(opts()));
    let results: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let solver = solver.clone();
                s.spawn(move || {
                    let t = MatrixType::Type4.generate(60, i);
                    solver.solve(&t).unwrap().values
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Each seed gives a different matrix but the same count.
    assert!(results.iter().all(|v| v.len() == 60));
    assert_ne!(results[0], results[1]);
}

#[test]
fn generators_and_solver_roundtrip_is_reproducible() {
    // Full reproducibility chain: seed → matrix → spectrum.
    let _q = dcst::matrix::failpoints::quiet();
    let a = TaskFlowDc::new(opts())
        .solve(&MatrixType::Type5.generate(80, 5))
        .unwrap();
    let b = TaskFlowDc::new(opts())
        .solve(&MatrixType::Type5.generate(80, 5))
        .unwrap();
    assert_eq!(a.values, b.values);
}

/// When *every* leaf fails (`steqr:1+`), the reported error must be the
/// one with the lowest block offset — not whichever worker happened to
/// push its failure last. Covers the drivers that collect failures from
/// parallel workers (and the sequential one as the fixed point).
#[cfg(feature = "failpoints")]
#[test]
fn multi_failure_reports_lowest_offset_block() {
    use dcst::core::DcError;
    use dcst::qriter::QrError;
    let t = MatrixType::Type4.generate(96, 5);
    let solvers: Vec<(&str, Box<dyn TridiagEigensolver>)> = vec![
        (
            "sequential",
            Box::new(SequentialDc::new(DcOptions {
                threads: 1,
                ..opts()
            })) as Box<_>,
        ),
        ("forkjoin", Box::new(ForkJoinDc::new(opts())) as Box<_>),
        ("levelpar", Box::new(LevelParallelDc::new(opts())) as Box<_>),
    ];
    for (name, solver) in &solvers {
        // Repeat: a scheduling-order-dependent report would flake here.
        for run in 0..8 {
            let _armed = dcst::matrix::failpoints::exclusive("steqr", "1+");
            match solver.solve(&t) {
                Err(DcError::Leaf(QrError::NoConvergence { block_start, .. })) => {
                    assert_eq!(block_start, 0, "{name} run {run}: lowest-offset block");
                }
                other => panic!("{name} run {run}: expected Leaf(NoConvergence), got {other:?}"),
            }
        }
    }
}

#[test]
fn mrrr_deterministic_given_thread_count() {
    let t = MatrixType::Type4.generate(70, 31);
    let s = MrrrSolver::new(dcst::mrrr::MrrrOptions {
        threads: 2,
        ..Default::default()
    });
    let (v1, m1) = s.solve(&t).unwrap();
    let (v2, m2) = s.solve(&t).unwrap();
    assert_eq!(v1, v2);
    assert_eq!(m1.as_slice(), m2.as_slice());
}
