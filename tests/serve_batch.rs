//! Batching oracle: the daemon's fused `batch` verb must be numerically
//! indistinguishable from solving each problem alone.
//!
//! The protocol serializes floats through `jsonv` bit-exactly (a
//! dcst-serve unit test pins that), so the oracle can demand *bit*
//! equality of eigenvalue arrays — not approximate agreement — between
//! a fused batch of k random problems and k solo solves, across both
//! priority classes (normal and high ride different injector lanes, so
//! this also pins scheduling-independence of the results). Eigenvector
//! quality rides along via the server-side `check` gates.

use dcst::prelude::*;
use dcst::runtime::jsonv::Json;
use dcst::serve::{Client, Server, ServerConfig};
use proptest::prelude::*;

/// One random problem of the oracle's universe.
#[derive(Clone, Debug)]
struct Prob {
    ty: usize,
    n: usize,
    seed: u64,
    values_only: bool,
}

fn arb_prob() -> impl Strategy<Value = Prob> {
    (1usize..=5, 8usize..96, 1u64..1000, 0u64..2).prop_map(|(ty, n, seed, vo)| Prob {
        ty,
        n,
        seed,
        values_only: vo == 1,
    })
}

fn problem_json(p: &Prob) -> String {
    let mode = if p.values_only { "values" } else { "full" };
    format!(
        r#"{{"matrix":{{"type":{},"n":{},"seed":{}}},"mode":"{mode}"}}"#,
        p.ty, p.n, p.seed
    )
}

fn value_bits(result: &Json) -> Vec<u64> {
    result
        .get("values")
        .expect("values")
        .as_arr()
        .expect("array")
        .iter()
        .map(|v| v.as_num().expect("number").to_bits())
        .collect()
}

fn assert_gates(result: &Json, p: &Prob) {
    if p.values_only {
        return;
    }
    let gate = 50.0 * p.n as f64 * f64::EPSILON;
    let orth = result.get("orth").expect("orth").as_num().unwrap();
    let res = result.get("residual").expect("residual").as_num().unwrap();
    assert!(
        orth < gate && res < gate,
        "gates failed for {p:?}: orth {orth} res {res}"
    );
}

fn solo_results(cl: &mut Client, probs: &[Prob], priority: &str) -> Vec<Json> {
    probs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mode = if p.values_only { "values" } else { "full" };
            let line = format!(
                r#"{{"op":"solve","id":{},"matrix":{{"type":{},"n":{},"seed":{}}},"mode":"{mode}","priority":"{priority}","check":true}}"#,
                100 + i,
                p.ty,
                p.n,
                p.seed
            );
            let doc = cl.call(&line).unwrap();
            assert_eq!(
                doc.get("ok").and_then(|o| match o {
                    Json::Bool(b) => Some(*b),
                    _ => None,
                }),
                Some(true),
                "solo solve failed: {doc:?}"
            );
            doc
        })
        .collect()
}

fn batch_results(cl: &mut Client, probs: &[Prob], priority: &str) -> Vec<Json> {
    let problems: Vec<String> = probs.iter().map(problem_json).collect();
    let line = format!(
        r#"{{"op":"batch","id":1,"problems":[{}],"priority":"{priority}","check":true}}"#,
        problems.join(",")
    );
    let doc = cl.call(&line).unwrap();
    let results = doc
        .get("results")
        .expect("results")
        .as_arr()
        .expect("array")
        .to_vec();
    assert_eq!(results.len(), probs.len());
    for r in &results {
        assert!(
            matches!(r.get("ok"), Some(Json::Bool(true))),
            "batch item failed: {r:?}"
        );
    }
    results
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Fused batches of random problems return bit-identical eigenvalues
    /// and gate-passing eigenvectors vs solo solves, in every
    /// priority-class ordering (solo-normal, solo-high, batch-normal,
    /// batch-high).
    #[test]
    fn fused_batch_is_bit_identical_to_solo(probs in proptest::collection::vec(arb_prob(), 1..4)) {
        let server = Server::start(ServerConfig {
            threads: 2,
            max_inflight: 8,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut cl = Client::connect(server.addr()).unwrap();
        let solo = solo_results(&mut cl, &probs, "normal");
        let oracle: Vec<Vec<u64>> = solo.iter().map(value_bits).collect();
        for (doc, p) in solo.iter().zip(&probs) {
            assert_gates(doc, p);
        }
        for priority in ["normal", "high"] {
            let batch = batch_results(&mut cl, &probs, priority);
            for ((r, bits), p) in batch.iter().zip(&oracle).zip(&probs) {
                prop_assert_eq!(&value_bits(r), bits, "batch[{}] diverged from solo", priority);
                assert_gates(r, p);
            }
        }
        let solo_high = solo_results(&mut cl, &probs, "high");
        for (doc, bits) in solo_high.iter().zip(&oracle) {
            prop_assert_eq!(&value_bits(doc), bits, "high-priority solo diverged");
        }
    }
}

/// Pin the protocol results to the in-process library solver: the values
/// crossing the wire are the very f64s `TaskFlowDc` produced.
#[test]
fn server_values_are_bitwise_the_library_values() {
    let opts = DcOptions {
        min_part: 16,
        nb: 32,
        threads: 2,
        extra_workspace: false,
        use_gatherv: true,
        mode: SolveMode::Full,
    };
    let server = Server::start(ServerConfig {
        threads: 2,
        opts,
        ..ServerConfig::default()
    })
    .unwrap();
    let t = MatrixType::from_index(4).unwrap().generate(80, 42);
    let eig = TaskFlowDc::new(opts).solve(&t).unwrap();
    let mut cl = Client::connect(server.addr()).unwrap();
    let doc = cl
        .call(r#"{"op":"solve","id":1,"matrix":{"type":4,"n":80,"seed":42}}"#)
        .unwrap();
    let wire = value_bits(&doc);
    let lib: Vec<u64> = eig.values.iter().map(|v| v.to_bits()).collect();
    assert_eq!(wire, lib);
}
