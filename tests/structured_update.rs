//! Oracle suite for the rank-structured eigenvector update: the dense
//! `UpdateVect` path is the pinned oracle, and the ACA-compressed path must
//! agree with it through the DMPV accuracy gates — across the fifteen
//! Table III generators, the glued-Wilkinson stress case, random
//! tridiagonals (proptest), and every D&C solver variant.
//!
//! The update policy knob is process-global, so every test here serializes
//! on one mutex; tests never leave a forced policy behind.

use dcst::matrix::{set_update_policy, UpdatePolicy};
use dcst::prelude::*;
use dcst::secular;
use dcst::tridiag::gen::glued_wilkinson;
use dcst::tridiag::MatrixType as MT;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// Shared DMPV gate in units of ε (see tests/accuracy_gates.rs).
const GATE: f64 = 50.0;
const EPS: f64 = f64::EPSILON;

/// Serializes every test in this binary around the global policy knob and
/// restores `Auto` when the guard drops.
struct PolicyLock {
    _guard: MutexGuard<'static, ()>,
}

impl PolicyLock {
    fn take(p: UpdatePolicy) -> Self {
        static LOCK: Mutex<()> = Mutex::new(());
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_update_policy(p);
        PolicyLock { _guard: guard }
    }
}

impl Drop for PolicyLock {
    fn drop(&mut self) {
        set_update_policy(UpdatePolicy::Auto);
    }
}

fn opts(threads: usize) -> DcOptions {
    DcOptions {
        min_part: 16,
        nb: 24,
        threads,
        ..DcOptions::default()
    }
}

fn solvers() -> Vec<Box<dyn TridiagEigensolver>> {
    vec![
        Box::new(SequentialDc::new(opts(1))),
        Box::new(ForkJoinDc::new(opts(2))),
        Box::new(LevelParallelDc::new(opts(2))),
        Box::new(TaskFlowDc::new(opts(2))),
    ]
}

/// Solve under the already-set policy and assert both DMPV gates.
fn gated_solve(t: &SymTridiag, solver: &dyn TridiagEigensolver, who: &str) -> Eigen {
    let eig = solver
        .solve(t)
        .unwrap_or_else(|e| panic!("{who}: solve failed: {e}"));
    let orth = orthogonality_error(&eig.vectors) / EPS;
    assert!(
        orth < GATE,
        "{who}: orthogonality gate: {orth:.1} eps (limit {GATE})"
    );
    let res = residual_error(
        t.n(),
        |x, y| t.matvec(x, y),
        &eig.values,
        &eig.vectors,
        t.max_norm(),
    ) / EPS;
    assert!(
        res < GATE,
        "{who}: residual gate: {res:.1} eps (limit {GATE})"
    );
    eig
}

/// Forced-structured and forced-dense solves must both pass the gates and
/// agree on the spectrum to rounding.
fn assert_structured_matches_dense(t: &SymTridiag, solver: &dyn TridiagEigensolver, who: &str) {
    let dense = {
        let _p = PolicyLock::take(UpdatePolicy::ForceDense);
        gated_solve(t, solver, &format!("{who} [dense]"))
    };
    let structured = {
        let _p = PolicyLock::take(UpdatePolicy::ForceStructured);
        gated_solve(t, solver, &format!("{who} [structured]"))
    };
    let scale = t.max_norm().max(1.0);
    for (i, (a, b)) in dense.values.iter().zip(&structured.values).enumerate() {
        assert!(
            (a - b).abs() < 1e-11 * scale,
            "{who}: eigenvalue {i} diverges: dense {a} vs structured {b}"
        );
    }
}

#[test]
fn table_iii_types_agree_with_dense_oracle() {
    let n = 72;
    for ty in MT::ALL {
        let t = ty.generate(n, 42);
        for solver in solvers() {
            let who = format!("type {} / {}", ty.index(), solver.name());
            assert_structured_matches_dense(&t, solver.as_ref(), &who);
        }
    }
}

#[test]
fn glued_wilkinson_agrees_with_dense_oracle() {
    let t = glued_wilkinson(11, 5, 1e-9);
    for solver in solvers() {
        let who = format!("glued-wilkinson / {}", solver.name());
        assert_structured_matches_dense(&t, solver.as_ref(), &who);
    }
}

/// A full-rank block must drive the sampled ACA probe to its cap, which
/// the auto-switch rule (`2·rank > k/2` → dense) then rejects: the
/// "clustered spectrum, zero deflation, maximal rank" adversary can never
/// route through the compressed path.
#[test]
fn full_rank_block_trips_the_auto_switch_to_dense() {
    let k = 128;
    // A deterministic full-rank "X": decaying diagonal dominance plus a
    // dense pseudo-random tail — no off-diagonal decay for ACA to exploit.
    let mut x = vec![0.0f64; k * k];
    let mut state = 0x9e3779b97f4a7c15u64;
    for j in 0..k {
        for i in 0..k {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            x[j * k + i] = noise + if i == j { 2.0 } else { 0.0 };
        }
    }
    let ident: Vec<usize> = (0..k).collect();
    let tol = secular::rank_tolerance(k, k);
    let est = secular::estimate_offdiag_rank(&x, k, k, &ident, tol);
    assert!(
        2 * est > k / 2,
        "full-rank block estimated at rank {est}: the auto switch would wrongly compress"
    );
}

/// End-to-end guard on the cost rule: a clustered-spectrum, essentially
/// undeflated matrix whose merges are all below the auto threshold must
/// never plan a structured update — the compressed counters stay flat
/// while the dense path solves it through the gates.
#[test]
fn small_zero_deflation_merges_never_structure_under_auto() {
    let _p = PolicyLock::take(UpdatePolicy::Auto);
    // Glued Wilkinson blocks: tightly clustered eigenvalue pairs, glue
    // small enough to keep the spectrum clustered but large enough that
    // nothing deflates. n = 5·17 = 85 keeps every merge below the k = 96
    // auto threshold, where tiling can only lose.
    let t = glued_wilkinson(17, 5, 1e-4);
    let before = dcst::matrix::metrics::snapshot();
    for solver in solvers() {
        let who = format!("auto clustered / {}", solver.name());
        gated_solve(&t, solver.as_ref(), &who);
    }
    let delta = dcst::matrix::metrics::snapshot().delta(&before);
    assert_eq!(
        delta.get("update.structured_merges"),
        0,
        "auto policy structured a merge whose estimated cost exceeds dense"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random tridiagonals: the structured update agrees with the dense
    /// oracle on the spectrum and passes both gates on the task-flow
    /// solver (forced structured exercises compressed tiles from k = 16).
    #[test]
    fn random_tridiagonals_agree_with_dense_oracle(
        n in 24usize..96,
        seed in 0u64..1u64 << 16,
    ) {
        let d: Vec<f64> = (0..n)
            .map(|i| ((seed.wrapping_mul(i as u64 + 1) % 1000) as f64) / 100.0 - 5.0)
            .collect();
        let e: Vec<f64> = (0..n - 1)
            .map(|i| ((seed.wrapping_mul(2 * i as u64 + 3) % 900) as f64) / 100.0 - 4.5)
            .collect();
        let t = SymTridiag::new(d, e);
        let solver = TaskFlowDc::new(opts(2));
        let dense = {
            let _p = PolicyLock::take(UpdatePolicy::ForceDense);
            gated_solve(&t, &solver, "proptest [dense]")
        };
        let structured = {
            let _p = PolicyLock::take(UpdatePolicy::ForceStructured);
            gated_solve(&t, &solver, "proptest [structured]")
        };
        let scale = t.max_norm().max(1.0);
        for (a, b) in dense.values.iter().zip(&structured.values) {
            prop_assert!((a - b).abs() < 1e-11 * scale, "{a} vs {b}");
        }
    }
}
