//! Fault injection under service load: DCST_FAIL sites firing inside the
//! daemon's shared runtime while several requests are in flight.
//!
//! Built only with `--features failpoints`. The property being proven is
//! the service-layer half of the failure model: a kernel fault is
//! attributed to exactly the request whose task faulted (typed
//! `numerical` error), every other in-flight request completes with
//! gate-passing results, the pool stays usable afterwards, and the
//! admission gauge returns to zero.

#![cfg(feature = "failpoints")]

use dcst::matrix::failpoints as fp;
use dcst::runtime::jsonv::Json;
use dcst::serve::{Client, Server, ServerConfig};

fn solve_line(id: u64, n: usize) -> String {
    format!(r#"{{"op":"solve","id":{id},"matrix":{{"type":4,"n":{n},"seed":{id}}},"check":true}}"#)
}

fn error_code(doc: &Json) -> Option<String> {
    doc.get("error")?.get("code")?.as_str().map(str::to_string)
}

fn is_ok(doc: &Json) -> bool {
    matches!(doc.get("ok"), Some(Json::Bool(true)))
}

fn assert_gates(doc: &Json, n: usize) {
    let gate = 50.0 * n as f64 * f64::EPSILON;
    let orth = doc.get("orth").unwrap().as_num().unwrap();
    let res = doc.get("residual").unwrap().as_num().unwrap();
    assert!(orth < gate && res < gate, "orth {orth} res {res}");
}

fn drain(cl: &mut Client, count: usize) -> Vec<(u64, Json)> {
    (0..count)
        .map(|_| {
            let doc = cl.recv().unwrap().expect("response");
            let id = doc.get("id").unwrap().as_num().unwrap() as u64;
            (id, doc)
        })
        .collect()
}

/// Arm one kernel site to fire exactly once while M = 4 solves are in
/// flight: exactly one request fails typed, the rest pass their gates,
/// and the daemon keeps serving.
#[test]
fn one_armed_site_fails_exactly_one_of_many() {
    for site in ["steqr", "laed4"] {
        let armed = fp::exclusive(site, "1");
        let server = Server::start(ServerConfig {
            threads: 2,
            max_inflight: 8,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut cl = Client::connect(server.addr()).unwrap();
        let ns: Vec<(u64, usize)> = (0..4).map(|i| (i, 64 + 8 * i as usize)).collect();
        for (id, n) in &ns {
            cl.send(&solve_line(*id, *n)).unwrap();
        }
        let responses = drain(&mut cl, ns.len());
        let failed: Vec<&(u64, Json)> = responses.iter().filter(|(_, d)| !is_ok(d)).collect();
        assert_eq!(
            failed.len(),
            1,
            "site {site}: exactly one request must fail, got {responses:?}"
        );
        assert_eq!(
            error_code(&failed[0].1).as_deref(),
            Some("numerical"),
            "site {site}: fault must surface as a typed numerical error"
        );
        assert_eq!(
            fp::fired(site),
            1,
            "site {site} must have fired exactly once"
        );
        for (id, doc) in &responses {
            if is_ok(doc) {
                let n = ns.iter().find(|(i, _)| i == id).unwrap().1;
                assert_gates(doc, n);
            }
        }
        drop(armed);
        // The pool survived the fault: a fresh request on the same shared
        // runtime completes, and the admission gauge is back to zero.
        let doc = cl.call(&solve_line(100, 56)).unwrap();
        assert!(is_ok(&doc), "pool unusable after fault: {doc:?}");
        assert_gates(&doc, 56);
        let doc = cl.call(r#"{"op":"metrics"}"#).unwrap();
        let m = doc.get("metrics").unwrap();
        assert_eq!(m.get("inflight").unwrap().as_num().unwrap(), 0.0);
    }
}

/// The same attribution property through the fused batch path: one item
/// of a batch fails typed, its siblings complete gate-passing, and the
/// batch envelope itself stays `ok`.
#[test]
fn batch_isolates_an_injected_item_fault() {
    let armed = fp::exclusive("steqr", "1");
    let server = Server::start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut cl = Client::connect(server.addr()).unwrap();
    let ns = [64usize, 72, 80];
    let problems: Vec<String> = ns
        .iter()
        .map(|n| format!(r#"{{"matrix":{{"type":4,"n":{n},"seed":7}}}}"#))
        .collect();
    let doc = cl
        .call(&format!(
            r#"{{"op":"batch","id":1,"problems":[{}],"check":true}}"#,
            problems.join(",")
        ))
        .unwrap();
    assert!(is_ok(&doc), "batch envelope must be ok: {doc:?}");
    let results = doc.get("results").unwrap().as_arr().unwrap().to_vec();
    assert_eq!(results.len(), ns.len());
    let failed: Vec<&Json> = results.iter().filter(|r| !is_ok(r)).collect();
    assert_eq!(
        failed.len(),
        1,
        "exactly one batch item must fail: {results:?}"
    );
    assert_eq!(error_code(failed[0]).as_deref(), Some("numerical"));
    for (r, n) in results.iter().zip(&ns) {
        if is_ok(r) {
            assert_gates(r, *n);
        }
    }
    drop(armed);
    let doc = cl.call(&solve_line(2, 48)).unwrap();
    assert!(is_ok(&doc));
}
