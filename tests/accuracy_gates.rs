//! DMPV accuracy gates: the normalized accuracy metrics of the paper's
//! Figure 9 expressed in units of machine epsilon, asserted below a shared
//! threshold for **every** generator in `dcst_tridiag::gen` and **every**
//! D&C solver variant.
//!
//! The gated quantities are the LAPACK testing conventions
//!
//! * orthogonality  `‖VᵀV − I‖_max / (n·ε)`
//! * residual       `max_i ‖T v_i − λ_i v_i‖₂ / (‖T‖·n·ε)`
//!
//! which [`orthogonality_error`] / [`residual_error`] already compute up to
//! the `1/ε` factor. A healthy solver sits at O(1) in these units; the gate
//! is deliberately roomy at 50 so it only trips on genuine accuracy
//! regressions (a lost digit is a factor ~10), never on noise.

use dcst::prelude::*;
use dcst::tridiag::gen::{application_suite, glued_wilkinson};
use dcst::tridiag::MatrixType as MT;

/// Shared gate for both metrics, in units of ε (see module docs).
const GATE: f64 = 50.0;

const EPS: f64 = f64::EPSILON;

fn opts(threads: usize) -> DcOptions {
    DcOptions {
        min_part: 16,
        nb: 24,
        threads,
        ..DcOptions::default()
    }
}

/// All four D&C variants, freshly constructed (the sequential variant is
/// pinned to one thread by construction).
fn solvers() -> Vec<Box<dyn TridiagEigensolver>> {
    vec![
        Box::new(SequentialDc::new(opts(1))),
        Box::new(ForkJoinDc::new(opts(2))),
        Box::new(LevelParallelDc::new(opts(2))),
        Box::new(TaskFlowDc::new(opts(2))),
    ]
}

/// Assert both DMPV gates for one (matrix, solver) pair.
fn assert_gates(t: &SymTridiag, solver: &dyn TridiagEigensolver, who: &str) {
    let n = t.n() as f64;
    let eig = solver
        .solve(t)
        .unwrap_or_else(|e| panic!("{who}: solve failed: {e}"));
    // orthogonality_error = ‖VᵀV − I‖_max / n, so ÷ε gives the gated form.
    let orth = orthogonality_error(&eig.vectors) / EPS;
    assert!(
        orth < GATE,
        "{who}: orthogonality gate: {orth:.1} eps (limit {GATE})"
    );
    // residual_error = max_i ‖Tv−λv‖₂ / (‖T‖·n), so ÷ε gives the gated form.
    let res = residual_error(
        t.n(),
        |x, y| t.matvec(x, y),
        &eig.values,
        &eig.vectors,
        t.max_norm(),
    ) / EPS;
    assert!(
        res < GATE,
        "{who}: residual gate: {res:.1} eps (limit {GATE})"
    );
    let _ = n;
}

#[test]
fn table_iii_types_pass_the_gates_on_every_solver() {
    let n = 96;
    for ty in MT::ALL {
        let t = ty.generate(n, 42);
        for solver in solvers() {
            let who = format!("type {} / {}", ty.index(), solver.name());
            assert_gates(&t, solver.as_ref(), &who);
        }
    }
}

#[test]
fn application_matrices_pass_the_gates_on_every_solver() {
    for app in application_suite(&[72]) {
        for solver in solvers() {
            let who = format!("{} / {}", app.name, solver.name());
            assert_gates(&app.matrix, solver.as_ref(), &who);
        }
    }
}

#[test]
fn glued_wilkinson_passes_the_gates_on_every_solver() {
    // Clustered spectrum with near-reducible glue: the classic stress case
    // for eigenvector orthogonality.
    let t = glued_wilkinson(11, 5, 1e-9);
    for solver in solvers() {
        let who = format!("glued-wilkinson / {}", solver.name());
        assert_gates(&t, solver.as_ref(), &who);
    }
}

#[test]
fn gates_are_scale_invariant() {
    // The normalized metrics must not move when the matrix is scaled: gate
    // a badly-scaled copy of a prescribed-spectrum type.
    let t = MT::Type4.generate(64, 7);
    let scaled = SymTridiag::new(
        t.d.iter().map(|x| x * 1e150).collect(),
        t.e.iter().map(|x| x * 1e150).collect(),
    );
    for solver in solvers() {
        let who = format!("scaled type 4 / {}", solver.name());
        assert_gates(&scaled, solver.as_ref(), &who);
    }
}
