//! Fault-injection tests: every failpoint site, through every solver.
//!
//! Built only with `--features failpoints`. Each test arms a site through
//! [`failpoints::exclusive`], which serializes arming tests against each
//! other (and against any [`failpoints::quiet`] holder) via a process-wide
//! RwLock — the registry is global state shared by all solver runs in this
//! binary.

#![cfg(feature = "failpoints")]

use dcst::core::DcError;
use dcst::matrix::failpoints as fp;
use dcst::prelude::*;
use dcst::qriter::QrError;
use dcst::secular::SecularError;
use dcst::tridiag::gen::MatrixType;
use proptest::prelude::*;

fn opts() -> DcOptions {
    DcOptions {
        min_part: 16,
        nb: 8,
        threads: 2,
        extra_workspace: false,
        use_gatherv: true,
        mode: SolveMode::Full,
    }
}

/// All four D&C drivers over the same kernels. `min_part = 16` with
/// `n >= 48` guarantees at least two leaves, so every injected leaf fault
/// has a parent merge to surface in.
fn solvers() -> Vec<(&'static str, Box<dyn TridiagEigensolver>)> {
    let o = opts();
    vec![
        (
            "sequential",
            Box::new(SequentialDc::new(DcOptions { threads: 1, ..o })) as Box<_>,
        ),
        ("forkjoin", Box::new(ForkJoinDc::new(o)) as Box<_>),
        ("levelpar", Box::new(LevelParallelDc::new(o)) as Box<_>),
        ("taskflow", Box::new(TaskFlowDc::new(o)) as Box<_>),
    ]
}

fn test_matrix() -> SymTridiag {
    MatrixType::Type4.generate(64, 3)
}

#[test]
fn steqr_failure_is_typed_from_every_solver() {
    let t = test_matrix();
    for (name, solver) in solvers() {
        let _armed = fp::exclusive("steqr", "1");
        match solver.solve(&t) {
            Err(DcError::Leaf(QrError::NoConvergence { .. })) => {}
            other => panic!("{name}: expected Leaf(NoConvergence), got {other:?}"),
        }
        assert_eq!(fp::fired("steqr"), 1, "{name}");
    }
}

#[test]
fn laed4_failure_is_typed_from_every_solver() {
    let t = test_matrix();
    for (name, solver) in solvers() {
        let _armed = fp::exclusive("laed4", "1");
        match solver.solve(&t) {
            Err(DcError::Secular(SecularError::NoConvergence { .. })) => {}
            other => panic!("{name}: expected Secular(NoConvergence), got {other:?}"),
        }
        assert_eq!(fp::fired("laed4"), 1, "{name}");
    }
}

#[test]
fn gemm_failure_is_typed_from_every_solver() {
    let t = test_matrix();
    for (name, solver) in solvers() {
        let _armed = fp::exclusive("gemm", "1");
        match solver.solve(&t) {
            Err(DcError::Breakdown { stage: "gemm", .. }) => {}
            other => panic!("{name}: expected Breakdown(gemm), got {other:?}"),
        }
        assert_eq!(fp::fired("gemm"), 1, "{name}");
    }
}

#[test]
fn nan_from_a_leaf_is_caught_at_the_parent_merge() {
    // `nan-steqr` poisons a leaf's eigenvalue block *after* the leaf solve
    // succeeded — the corruption must be caught by the parent merge's input
    // scan, never panic, never leak into an Ok result.
    let t = test_matrix();
    for (name, solver) in solvers() {
        let _armed = fp::exclusive("nan-steqr", "1");
        match solver.solve(&t) {
            Err(DcError::Breakdown {
                stage: "deflate", ..
            }) => {}
            other => panic!("{name}: expected Breakdown(deflate), got {other:?}"),
        }
        assert_eq!(fp::fired("nan-steqr"), 1, "{name}");
    }
}

#[test]
fn nan_from_a_gemm_is_caught_by_the_output_scan() {
    let t = test_matrix();
    for (name, solver) in solvers() {
        let _armed = fp::exclusive("nan-gemm", "1");
        match solver.solve(&t) {
            Err(DcError::Breakdown {
                stage: "update-vect",
                ..
            }) => {}
            other => panic!("{name}: expected Breakdown(update-vect), got {other:?}"),
        }
        assert_eq!(fp::fired("nan-gemm"), 1, "{name}");
    }
}

#[test]
fn trigger_count_is_respected() {
    // A trigger beyond the number of site hits never fires: the solve must
    // succeed bit-for-bit as if the feature were off.
    let t = test_matrix();
    let _armed = fp::exclusive("steqr", "999");
    let eig = TaskFlowDc::new(opts()).solve(&t).unwrap();
    assert_eq!(fp::fired("steqr"), 0);
    assert!(fp::hits("steqr") >= 2, "several leaves hit the site");
    assert!(eig.values.iter().all(|v| v.is_finite()));
}

#[test]
fn second_hit_trigger_spares_the_first_site() {
    let t = test_matrix();
    let _armed = fp::exclusive("steqr", "2");
    match SequentialDc::new(opts()).solve(&t) {
        // Leaves solve in ascending offset order sequentially, so the
        // second leaf is the one that fails.
        Err(DcError::Leaf(QrError::NoConvergence { block_start, .. })) => {
            assert!(block_start >= 16, "second leaf starts past min_part");
        }
        other => panic!("expected Leaf(NoConvergence), got {other:?}"),
    }
    assert_eq!(fp::hits("steqr"), 2);
}

#[test]
fn solver_is_reusable_after_an_injected_failure() {
    let t = test_matrix();
    let solver = TaskFlowDc::new(opts());
    {
        let _armed = fp::exclusive("laed4", "1");
        assert!(solver.solve(&t).is_err());
    }
    let _q = fp::quiet();
    let eig = solver.solve(&t).unwrap();
    let res = dcst::matrix::residual_error(
        t.n(),
        |x, y| t.matvec(x, y),
        &eig.values,
        &eig.vectors,
        t.max_norm(),
    );
    assert!(res < 1e-12, "clean solve after failure: residual {res}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// A NaN injected anywhere in the merge tree yields `Err`, never a
    /// panic and never a silently wrong `Ok` — for all four solvers.
    #[test]
    fn injected_nan_never_panics_or_corrupts_ok(
        ty in 1usize..=15,
        n in 48usize..=96,
        seed in 0u64..1000,
        site_idx in 0usize..2,
        trigger in 1usize..6,
    ) {
        let site = ["nan-steqr", "nan-gemm"][site_idx];
        let t = MatrixType::from_index(ty).unwrap().generate(n, seed);
        for (name, solver) in solvers() {
            let _armed = fp::exclusive(site, &trigger.to_string());
            let result = solver.solve(&t);
            let fired = fp::fired(site);
            match result {
                Ok(eig) => {
                    prop_assert_eq!(fired, 0, "{}: Ok but {} fired", name, site);
                    prop_assert!(
                        eig.values.iter().all(|v| v.is_finite()),
                        "{}: non-finite eigenvalue in Ok result", name
                    );
                    prop_assert!(
                        eig.vectors.as_slice().iter().all(|v| v.is_finite()),
                        "{}: non-finite eigenvector entry in Ok result", name
                    );
                }
                Err(DcError::Breakdown { .. }) => {
                    prop_assert!(fired > 0, "{}: Breakdown without a fired site", name);
                }
                Err(other) => {
                    return Err(TestCaseError::fail(format!(
                        "{name}: unexpected error variant {other:?}"
                    )));
                }
            }
        }
    }
}
