//! Property-based tests (proptest) on the workspace's core invariants.

use dcst::prelude::*;
use dcst::secular;
use dcst::tridiag::gen::jacobi_from_spectrum;
use proptest::prelude::*;

/// Strategy: a random symmetric tridiagonal with entries in [-scale, scale].
fn arb_tridiag(max_n: usize) -> impl Strategy<Value = SymTridiag> {
    (2usize..max_n).prop_flat_map(|n| {
        (
            proptest::collection::vec(-10.0f64..10.0, n),
            proptest::collection::vec(-10.0f64..10.0, n - 1),
        )
            .prop_map(|(d, e)| SymTridiag::new(d, e))
    })
}

/// Strategy: strictly ascending poles plus unit-ish z for secular problems.
fn arb_secular(max_k: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>, f64)> {
    (2usize..max_k).prop_flat_map(|k| {
        (
            proptest::collection::vec(0.01f64..1.0, k),
            proptest::collection::vec(0.05f64..1.0, k),
            0.1f64..4.0,
        )
            .prop_map(|(gaps, mut z, rho)| {
                let mut d = Vec::with_capacity(gaps.len());
                let mut acc = 0.0;
                for g in gaps {
                    acc += g;
                    d.push(acc);
                }
                let nrm: f64 = z.iter().map(|x| x * x).sum::<f64>().sqrt();
                z.iter_mut().for_each(|x| *x /= nrm);
                (d, z, rho)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The task-flow solver always produces a sorted spectrum, orthogonal
    /// vectors and small residuals on random tridiagonals.
    #[test]
    fn taskflow_decomposes_random_tridiagonals(t in arb_tridiag(60)) {
        let opts = DcOptions { min_part: 8, nb: 8, threads: 2, extra_workspace: true, use_gatherv: true, mode: SolveMode::Full };
        let eig = TaskFlowDc::new(opts).solve(&t).unwrap();
        prop_assert!(eig.values.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(orthogonality_error(&eig.vectors) < 1e-12);
        let res = residual_error(t.n(), |x, y| t.matvec(x, y), &eig.values, &eig.vectors, t.max_norm());
        prop_assert!(res < 1e-12);
    }

    /// D&C and QR iteration agree on the spectrum of random tridiagonals.
    #[test]
    fn taskflow_matches_qr_spectrum(t in arb_tridiag(50)) {
        let eig = TaskFlowDc::new(DcOptions { min_part: 8, nb: 8, threads: 2, extra_workspace: true, use_gatherv: true, mode: SolveMode::Full })
            .solve(&t).unwrap();
        let lam_qr = QrIteration.solve_values(&t).unwrap();
        for (a, b) in eig.values.iter().zip(&lam_qr) {
            prop_assert!((a - b).abs() < 1e-11 * t.max_norm().max(1.0), "{a} vs {b}");
        }
    }

    /// Eigenvalue count below x from Sturm sequences matches the number of
    /// computed eigenvalues below x.
    #[test]
    fn sturm_count_consistent_with_spectrum(t in arb_tridiag(40), x in -40.0f64..40.0) {
        let lam = QrIteration.solve_values(&t).unwrap();
        let direct = lam.iter().filter(|&&l| l < x).count();
        let counted = dcst::tridiag::sturm_count(&t, x);
        // Ties at x within rounding can differ by the multiplicity at x.
        let at_x = lam.iter().filter(|&&l| (l - x).abs() < 1e-9 * t.max_norm().max(1.0)).count();
        prop_assert!(counted.abs_diff(direct) <= at_x, "count {counted} vs direct {direct}");
    }

    /// Secular roots strictly interlace the poles and the trace identity
    /// Σλ = Σd + ρ‖z‖² holds.
    #[test]
    fn secular_roots_interlace_and_sum((d, z, rho) in arb_secular(24)) {
        let k = d.len();
        let mut delta = vec![0.0; k];
        let mut sum = 0.0;
        for j in 0..k {
            let lam = secular::solve_secular_root(j, &d, &z, rho, &mut delta).unwrap();
            prop_assert!(lam > d[j], "root {j} below pole");
            if j + 1 < k {
                prop_assert!(lam < d[j + 1], "root {j} above next pole");
            }
            sum += lam;
        }
        let zn2: f64 = z.iter().map(|x| x * x).sum();
        let want = d.iter().sum::<f64>() + rho * zn2;
        prop_assert!((sum - want).abs() < 1e-9 * want.abs().max(1.0), "{sum} vs {want}");
    }

    /// The Gu–Eisenstat pipeline yields orthonormal secular eigenvectors.
    #[test]
    fn secular_vectors_orthonormal((d, z, rho) in arb_secular(16)) {
        let k = d.len();
        let mut deltas = vec![0.0; k * k];
        for j in 0..k {
            secular::solve_secular_root(j, &d, &z, rho, &mut deltas[j * k..(j + 1) * k]).unwrap();
        }
        let parts = vec![secular::local_w_products(&d, &deltas, k, 0, 0..k)];
        let zhat = secular::reduce_w(&z, &parts);
        let ident: Vec<usize> = (0..k).collect();
        secular::assemble_vectors(&zhat, &mut deltas, k, 0, 0..k, &ident);
        for a in 0..k {
            for b in 0..=a {
                let g: f64 = (0..k).map(|i| deltas[a * k + i] * deltas[b * k + i]).sum();
                let want = if a == b { 1.0 } else { 0.0 };
                prop_assert!((g - want).abs() < 1e-10, "gram({a},{b}) = {g}");
            }
        }
    }

    /// The RKPW inverse eigenvalue construction reproduces its prescribed
    /// spectrum (checked through QR iteration).
    #[test]
    fn rkpw_reproduces_prescribed_spectrum(
        gaps in proptest::collection::vec(0.05f64..1.0, 2..20),
        seedw in 1u64..1000,
    ) {
        let mut lam = Vec::with_capacity(gaps.len());
        let mut acc = 0.0;
        for g in &gaps {
            acc += g;
            lam.push(acc);
        }
        let weights: Vec<f64> = (0..lam.len())
            .map(|i| 0.05 + ((seedw.wrapping_mul(i as u64 + 1) % 97) as f64) / 100.0)
            .collect();
        let t = jacobi_from_spectrum(&lam, &weights);
        let got = QrIteration.solve_values(&t).unwrap();
        for (a, b) in got.iter().zip(&lam) {
            prop_assert!((a - b).abs() < 1e-10 * acc.max(1.0), "{a} vs {b}");
        }
    }

    /// Deflation output is always a bijection whose secular poles are
    /// strictly ascending and whose groups partition the columns.
    #[test]
    fn deflation_invariants(t in arb_tridiag(40)) {
        // Build a realistic merge input from a solved pair of halves.
        let n = t.n();
        if n < 4 { return Ok(()); }
        let n1 = n / 2;
        let t1 = SymTridiag::new(t.d[..n1].to_vec(), t.e[..n1 - 1].to_vec());
        let t2 = SymTridiag::new(t.d[n1..].to_vec(), t.e[n1..].to_vec());
        let (lam1, v1) = QrIteration.solve(&t1).unwrap();
        let (lam2, v2) = QrIteration.solve(&t2).unwrap();
        let beta = t.e[n1 - 1];
        let mut d = lam1.clone();
        d.extend(&lam2);
        let mut z: Vec<f64> = (0..n1).map(|j| v1[(n1 - 1, j)] * std::f64::consts::FRAC_1_SQRT_2).collect();
        z.extend((0..n - n1).map(|j| v2[(0, j)] * std::f64::consts::FRAC_1_SQRT_2));
        let idxq: Vec<usize> = (0..n).collect();
        let out = secular::deflate(&secular::DeflationInput { d: &d, z: &z, beta, n1, idxq: &idxq });

        let mut perm = out.perm.clone();
        perm.sort_unstable();
        prop_assert_eq!(perm, (0..n).collect::<Vec<_>>(), "perm is a bijection");
        prop_assert!(out.dlamda.windows(2).all(|w| w[0] < w[1]), "poles strictly ascending");
        prop_assert_eq!(out.k + out.d_deflated.len(), n);
        prop_assert_eq!(out.ctot.iter().sum::<usize>(), n);
        let mut slots = out.sec_to_slot.clone();
        slots.sort_unstable();
        prop_assert_eq!(slots, (0..out.k).collect::<Vec<_>>(), "slot map is a bijection");
    }
}
