//! Cross-crate integration tests: every solver must agree on eigenvalues
//! and produce numerically orthogonal eigenvectors with small residuals,
//! across the paper's full matrix-type suite.

use dcst::mrrr::{MrrrOptions, MrrrSolver};
use dcst::prelude::*;
use dcst::tridiag::MatrixType as MT;

fn check_decomposition(t: &SymTridiag, lam: &[f64], v: &dcst::matrix::Matrix, tol: f64, who: &str) {
    assert!(
        lam.windows(2).all(|w| w[0] <= w[1]),
        "{who}: values not sorted"
    );
    let orth = orthogonality_error(v);
    assert!(orth < tol, "{who}: orthogonality {orth:e}");
    let res = residual_error(t.n(), |x, y| t.matvec(x, y), lam, v, t.max_norm());
    assert!(res < tol, "{who}: residual {res:e}");
}

fn assert_same_values(a: &[f64], b: &[f64], scale: f64, who: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= 1e-11 * scale,
            "{who}: eigenvalue {i}: {x} vs {y}"
        );
    }
}

fn opts(threads: usize) -> DcOptions {
    DcOptions {
        min_part: 24,
        nb: 32,
        threads,
        ..DcOptions::default()
    }
}

#[test]
fn all_solvers_agree_on_every_matrix_type() {
    let n = 120;
    for ty in MT::ALL {
        let t = ty.generate(n, 99);
        let scale = t.max_norm().max(1.0);

        let reference = QrIteration.solve(&t).expect("qr");
        check_decomposition(&t, &reference.0, &reference.1, 1e-11, "qr");

        for solver in [
            Box::new(SequentialDc::new(opts(1))) as Box<dyn TridiagEigensolver>,
            Box::new(ForkJoinDc::new(opts(2))),
            Box::new(LevelParallelDc::new(opts(2))),
            Box::new(TaskFlowDc::new(opts(2))),
        ] {
            let eig = solver
                .solve(&t)
                .unwrap_or_else(|e| panic!("{} on type {}: {e}", solver.name(), ty.index()));
            check_decomposition(&t, &eig.values, &eig.vectors, 1e-12, solver.name());
            assert_same_values(&reference.0, &eig.values, scale, solver.name());
        }

        let mrrr = MrrrSolver::new(MrrrOptions {
            threads: 2,
            ..Default::default()
        });
        let (lam, v) = mrrr
            .solve(&t)
            .unwrap_or_else(|e| panic!("mrrr on type {}: {e}", ty.index()));
        check_decomposition(&t, &lam, &v, 1e-9, "mrrr");
        assert_same_values(&reference.0, &lam, scale, "mrrr");
    }
}

#[test]
fn dc_is_more_accurate_than_mrrr_on_average() {
    // The paper's Figure 9 claim, asserted as an aggregate.
    let n = 150;
    let mut dc_worse = 0usize;
    let mut cases = 0usize;
    for ty in MT::ALL {
        let t = ty.generate(n, 5);
        let eig = TaskFlowDc::new(opts(2)).solve(&t).unwrap();
        let (lam, v) = MrrrSolver::new(MrrrOptions {
            threads: 2,
            ..Default::default()
        })
        .solve(&t)
        .unwrap();
        let o_dc = orthogonality_error(&eig.vectors);
        let o_mr = orthogonality_error(&v);
        let _ = lam;
        if o_dc > o_mr {
            dc_worse += 1;
        }
        cases += 1;
    }
    assert!(
        dc_worse * 3 <= cases,
        "D&C worse on {dc_worse}/{cases} types"
    );
}

#[test]
fn full_dense_pipeline_roundtrip() {
    use dcst::tridiag::{apply_q, dense_with_spectrum, tridiagonalize};
    let spectrum: Vec<f64> = (0..80).map(|i| (i as f64).cos() * 5.0).collect();
    let a = dense_with_spectrum(&spectrum, 31);
    let (t, q) = tridiagonalize(&a);
    let eig = TaskFlowDc::new(opts(2)).solve(&t).unwrap();
    let mut v = eig.vectors;
    apply_q(&q, &mut v);
    let res = dcst::matrix::symmetric_residual_error(&a, &eig.values, &v);
    let orth = orthogonality_error(&v);
    assert!(res < 1e-13, "pipeline residual {res:e}");
    assert!(orth < 1e-13, "pipeline orthogonality {orth:e}");
    let mut want = spectrum;
    want.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (got, want) in eig.values.iter().zip(&want) {
        assert!((got - want).abs() < 1e-10, "{got} vs {want}");
    }
}

#[test]
fn large_min_part_and_tiny_min_part_agree() {
    let t = MT::Type3.generate(100, 12);
    let big = TaskFlowDc::new(DcOptions {
        min_part: 100,
        nb: 16,
        threads: 2,
        extra_workspace: true,
        use_gatherv: true,
        mode: SolveMode::Full,
    })
    .solve(&t)
    .unwrap();
    let small = TaskFlowDc::new(DcOptions {
        min_part: 4,
        nb: 16,
        threads: 2,
        extra_workspace: true,
        use_gatherv: true,
        mode: SolveMode::Full,
    })
    .solve(&t)
    .unwrap();
    for (a, b) in big.values.iter().zip(&small.values) {
        assert!((a - b).abs() < 1e-11);
    }
}

#[test]
fn glued_wilkinson_all_solvers() {
    let t = dcst::tridiag::gen::glued_wilkinson(11, 4, 1e-10);
    let eig = TaskFlowDc::new(opts(2)).solve(&t).unwrap();
    check_decomposition(&t, &eig.values, &eig.vectors, 1e-12, "taskflow/glued");
    let (lam, v) = MrrrSolver::new(MrrrOptions {
        threads: 2,
        ..Default::default()
    })
    .solve(&t)
    .unwrap();
    check_decomposition(&t, &lam, &v, 1e-8, "mrrr/glued");
    assert_same_values(&eig.values, &lam, t.max_norm(), "glued wilkinson");
}

#[test]
fn application_suite_through_taskflow() {
    for app in dcst::tridiag::gen::application_suite(&[60, 90]) {
        let eig = TaskFlowDc::new(opts(2)).solve(&app.matrix).unwrap();
        check_decomposition(&app.matrix, &eig.values, &eig.vectors, 1e-11, &app.name);
    }
}
