//! Concurrency harness for the `dcst serve` daemon (in-process).
//!
//! Drives a real TCP [`Server`] with concurrent clients issuing a mix of
//! solves, cancels, malformed requests, and oversized payloads, and
//! asserts the service-layer contracts: every error is typed, a shed or
//! cancelled request never poisons its neighbours, admission capacity is
//! returned when a request is cancelled, and the in-flight gauge drains
//! to zero. Also built (and green) under `--features "failpoints
//! access-check"` — the shadow tracker validates every task's declared
//! accesses while the harness hammers the shared runtime.

use dcst::runtime::jsonv::Json;
use dcst::serve::{Client, Server, ServerConfig};
use std::thread;
use std::time::{Duration, Instant};

fn server(threads: usize, max_inflight: usize) -> Server {
    Server::start(ServerConfig {
        threads,
        max_inflight,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

fn obj_bool(doc: &Json, key: &str) -> Option<bool> {
    match doc.get(key) {
        Some(Json::Bool(b)) => Some(*b),
        _ => None,
    }
}

fn error_code(doc: &Json) -> Option<String> {
    doc.get("error")?.get("code")?.as_str().map(str::to_string)
}

fn req_id(doc: &Json) -> Option<u64> {
    doc.get("id")?.as_num().map(|x| x as u64)
}

fn solve_line(id: u64, ty: usize, n: usize, seed: u64, extra: &str) -> String {
    format!(r#"{{"op":"solve","id":{id},"matrix":{{"type":{ty},"n":{n},"seed":{seed}}}{extra}}}"#)
}

/// Six clients hammer one daemon with a mixed workload; every response
/// must be well-formed, correctly tagged, and (for solves) gate-passing.
#[test]
fn concurrent_clients_mixed_workload() {
    let server = server(2, 16);
    let addr = server.addr();
    let workers: Vec<_> = (0..6)
        .map(|c| {
            thread::spawn(move || {
                let mut cl = Client::connect(addr).unwrap();
                // Ping.
                let doc = cl.call(r#"{"op":"ping","id":1}"#).unwrap();
                assert_eq!(obj_bool(&doc, "pong"), Some(true));
                // A full solve with the server-side gate check.
                let n = 32 + 8 * c;
                let doc = cl
                    .call(&solve_line(
                        2,
                        1 + (c % 5),
                        n,
                        c as u64 + 1,
                        r#","check":true"#,
                    ))
                    .unwrap();
                assert_eq!(obj_bool(&doc, "ok"), Some(true), "client {c}: {doc:?}");
                assert_eq!(doc.get("values").unwrap().as_arr().unwrap().len(), n);
                let orth = doc.get("orth").unwrap().as_num().unwrap();
                let res = doc.get("residual").unwrap().as_num().unwrap();
                let gate = 50.0 * n as f64 * f64::EPSILON;
                assert!(
                    orth < gate && res < gate,
                    "client {c}: orth {orth} res {res}"
                );
                // Typed error for a malformed request, connection intact.
                let doc = cl.call(r#"{"op":"solve","id":3}"#).unwrap();
                assert_eq!(error_code(&doc).as_deref(), Some("bad-request"));
                // Values-only and subset modes.
                let doc = cl
                    .call(&solve_line(4, 4, 48, 9, r#","mode":"values""#))
                    .unwrap();
                assert_eq!(obj_bool(&doc, "ok"), Some(true));
                let doc = cl
                    .call(&solve_line(
                        5,
                        4,
                        48,
                        9,
                        r#","mode":{"subset":[3,7]},"check":true"#,
                    ))
                    .unwrap();
                assert_eq!(obj_bool(&doc, "ok"), Some(true));
                assert_eq!(doc.get("k").unwrap().as_num().unwrap() as usize, 5);
                // High priority rides the injector lane end to end.
                let doc = cl
                    .call(&solve_line(6, 2, 40, 3, r#","priority":"high""#))
                    .unwrap();
                assert_eq!(obj_bool(&doc, "ok"), Some(true));
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    // The in-flight gauge drains to zero once every client is done.
    let mut cl = Client::connect(addr).unwrap();
    let doc = cl.call(r#"{"op":"metrics"}"#).unwrap();
    let m = doc.get("metrics").unwrap();
    assert_eq!(m.get("inflight").unwrap().as_num().unwrap(), 0.0);
    assert!(m.get("completed").unwrap().as_num().unwrap() >= 6.0 * 4.0);
}

/// Oversized request lines and oversized matrices are both shed with a
/// typed error, and the connection stays line-synchronized afterwards.
#[test]
fn oversized_inputs_are_typed_and_resynced() {
    let server = Server::start(ServerConfig {
        threads: 1,
        max_line: 4096,
        max_n: 64,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut cl = Client::connect(server.addr()).unwrap();
    // A line over the cap: typed `oversized`, then the stream recovers.
    let giant = format!(r#"{{"op":"solve","id":1,"pad":"{}"}}"#, "x".repeat(8192));
    let doc = cl.call(&giant).unwrap();
    assert_eq!(error_code(&doc).as_deref(), Some("oversized"));
    // A matrix over the server's order limit: shed before any allocation.
    let doc = cl.call(&solve_line(2, 4, 4096, 1, "")).unwrap();
    assert_eq!(error_code(&doc).as_deref(), Some("oversized"));
    // The connection still solves fine.
    let doc = cl.call(&solve_line(3, 4, 32, 1, "")).unwrap();
    assert_eq!(obj_bool(&doc, "ok"), Some(true));
}

/// The admission-control story, pipelined on one connection so the
/// ordering is deterministic: request A fills the only slot, B is shed
/// with typed `busy`, cancelling A frees the slot, and C is admitted.
#[test]
fn cancellation_frees_admission_capacity() {
    let server = server(2, 1);
    let addr = server.addr();
    let mut cl = Client::connect(addr).unwrap();
    // A: big enough that it is still mid-flight when the cancel lands.
    cl.send(&solve_line(10, 4, 700, 1, "")).unwrap();
    // B: same connection, so the reader admits A first — B must shed.
    cl.send(&solve_line(11, 4, 16, 1, "")).unwrap();
    let doc = cl.recv().unwrap().expect("busy response");
    assert_eq!(req_id(&doc), Some(11));
    assert_eq!(error_code(&doc).as_deref(), Some("busy"));
    // Cancel A; its response must be a typed `cancelled` error (the
    // solve is far too large to have finished already).
    let doc = cl.call(r#"{"op":"cancel","id":10}"#).unwrap();
    assert_eq!(obj_bool(&doc, "cancelled"), Some(true));
    let doc = cl.recv().unwrap().expect("A's response");
    assert_eq!(req_id(&doc), Some(10));
    assert_eq!(error_code(&doc).as_deref(), Some("cancelled"));
    // Capacity is back: C is admitted and completes.
    let doc = cl
        .call(&solve_line(12, 4, 48, 1, r#","check":true"#))
        .unwrap();
    assert_eq!(req_id(&doc), Some(12));
    assert_eq!(obj_bool(&doc, "ok"), Some(true), "{doc:?}");
    // And the daemon counted the shed + cancel.
    let doc = cl.call(r#"{"op":"metrics"}"#).unwrap();
    let m = doc.get("metrics").unwrap();
    assert!(m.get("shed").unwrap().as_num().unwrap() >= 1.0);
    assert!(m.get("cancelled").unwrap().as_num().unwrap() >= 1.0);
    assert_eq!(m.get("inflight").unwrap().as_num().unwrap(), 0.0);
}

/// A duplicate in-flight id on one connection is rejected (responses
/// would be indistinguishable), and cancel on an unknown id reports
/// `cancelled: false` instead of an error.
#[test]
fn duplicate_and_unknown_ids() {
    let server = server(2, 8);
    let mut cl = Client::connect(server.addr()).unwrap();
    cl.send(&solve_line(7, 4, 600, 1, "")).unwrap();
    let doc = cl.call(&solve_line(7, 4, 16, 1, "")).unwrap();
    assert_eq!(error_code(&doc).as_deref(), Some("bad-request"));
    let doc = cl.call(r#"{"op":"cancel","id":99}"#).unwrap();
    assert_eq!(obj_bool(&doc, "cancelled"), Some(false));
    let doc = cl.call(r#"{"op":"cancel","id":7}"#).unwrap();
    assert_eq!(obj_bool(&doc, "cancelled"), Some(true));
    // Drain request 7's (cancelled or completed) response.
    let doc = cl.recv().unwrap().expect("7's response");
    assert_eq!(req_id(&doc), Some(7));
}

/// A client that vanishes mid-solve must not leak its admission slot:
/// the disconnect sweep cancels its jobs and capacity returns.
#[test]
fn disconnect_releases_capacity() {
    let server = server(2, 1);
    let addr = server.addr();
    {
        let mut cl = Client::connect(addr).unwrap();
        cl.send(&solve_line(1, 4, 700, 1, "")).unwrap();
        // Drop the connection with the solve still in flight.
    }
    // A fresh client gets the slot back (poll briefly: the disconnect
    // sweep races the cancel latch draining the abandoned graph).
    let mut cl = Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let doc = cl.call(&solve_line(2, 4, 24, 1, "")).unwrap();
        if obj_bool(&doc, "ok") == Some(true) {
            break;
        }
        assert_eq!(error_code(&doc).as_deref(), Some("busy"));
        assert!(Instant::now() < deadline, "slot never came back");
        thread::sleep(Duration::from_millis(50));
    }
}
