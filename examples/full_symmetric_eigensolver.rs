//! The complete symmetric eigensolver pipeline of the paper's
//! Eq. (1)–(3): reduce a dense symmetric matrix to tridiagonal form with
//! Householder reflections, solve the tridiagonal eigenproblem with the
//! task-flow D&C solver, and back-transform the eigenvectors.
//!
//! ```text
//! cargo run --release --example full_symmetric_eigensolver
//! ```

use dcst::prelude::*;
use dcst::tridiag::{apply_q, dense_with_spectrum, tridiagonalize};

fn main() {
    // A dense symmetric matrix with a known random-ish spectrum.
    let n = 200;
    let spectrum: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.37).sin() * 10.0 + i as f64 * 0.01)
        .collect();
    let a = dense_with_spectrum(&spectrum, 2024);
    println!("dense symmetric A: {n} x {n}");

    // (1)  A = Q T Qt — Householder tridiagonalization.
    let (t, q) = tridiagonalize(&a);
    println!(
        "reduced to tridiagonal (|d|max = {:.3}, |e|max = {:.3})",
        t.d.iter().fold(0.0f64, |m, &x| m.max(x.abs())),
        t.e.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    );

    // (2)  T = V L Vt — the task-flow divide & conquer eigensolver.
    let eig = TaskFlowDc::new(DcOptions::default())
        .solve(&t)
        .expect("D&C failed");

    // (3)  eigenvectors of A are Q V — back-transformation.
    let mut vectors = eig.vectors;
    apply_q(&q, &mut vectors);

    // Verify against the matrix we built.
    let orth = orthogonality_error(&vectors);
    let resid = dcst::matrix::symmetric_residual_error(&a, &eig.values, &vectors);
    println!("orthogonality of QV      = {orth:.3e}");
    println!("residual |Av - lv|/(|A|n) = {resid:.3e}");

    // The computed spectrum must match the prescribed one.
    let mut want = spectrum.clone();
    want.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let max_err = eig
        .values
        .iter()
        .zip(&want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |computed - prescribed eigenvalue| = {max_err:.3e}");
    assert!(orth < 1e-12 && resid < 1e-12 && max_err < 1e-9);
    println!("full pipeline verified");
}
