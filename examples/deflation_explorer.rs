//! Explore the property that drives D&C performance: deflation.
//!
//! Runs the task-flow solver over every Table III matrix type, printing
//! the measured deflation ratio, the cost-model prediction versus the
//! cubic worst case, and an execution-trace summary. Shows why type 2
//! (clustered spectrum) runs an order of magnitude faster than type 4
//! (uniform spectrum) at the same size.
//!
//! ```text
//! cargo run --release --example deflation_explorer -- 600
//! ```

use dcst::core::{solve_cost_model, TaskFlowDc};
use dcst::prelude::*;
use dcst::tridiag::MatrixType as MT;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);
    let solver = TaskFlowDc::new(DcOptions::default());

    println!(
        "{:<8} {:>10} {:>11} {:>14} {:>12} {:>10}",
        "type", "time", "deflation", "model ops", "worst case", "savings"
    );
    for ty in MT::ALL {
        let t = ty.generate(n, 1);
        let start = Instant::now();
        let (eig, stats) = solver.solve_with_stats(&t).expect("solve failed");
        let secs = start.elapsed().as_secs_f64();
        let (measured, worst) = solve_cost_model(&stats.merges);
        let orth = orthogonality_error(&eig.vectors);
        assert!(orth < 1e-11, "type {} orthogonality {orth}", ty.index());
        println!(
            "type{:<4} {:>9.1}ms {:>10.0}% {:>14} {:>12} {:>9.1}x",
            ty.index(),
            secs * 1e3,
            100.0 * stats.overall_deflation(),
            measured,
            worst,
            worst as f64 / measured.max(1) as f64,
        );
    }
    println!("\n(the 'savings' column is the cost-model ratio between the no-deflation");
    println!(" worst case and the observed run — the paper's O(n^2.4) claim in action)");
}
