//! Compare every tridiagonal eigensolver in the workspace on one matrix:
//! the four D&C variants (sequential / fork-join / level-parallel /
//! task-flow) plus MRRR and plain QR iteration, with timing and the
//! paper's two accuracy metrics.
//!
//! ```text
//! cargo run --release --example solver_comparison -- 4 800
//! #                                                  ^type ^size
//! ```

use dcst::mrrr::{MrrrOptions, MrrrSolver};
use dcst::prelude::*;
use dcst::tridiag::MatrixType as MT;
use std::time::Instant;

fn report(name: &str, secs: f64, t: &SymTridiag, lam: &[f64], v: &dcst::matrix::Matrix) {
    let orth = orthogonality_error(v);
    let resid = residual_error(t.n(), |x, y| t.matvec(x, y), lam, v, t.max_norm());
    println!(
        "{name:<18} {:>9.1}ms   orth {orth:.2e}   resid {resid:.2e}",
        secs * 1e3
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let ty =
        MT::from_index(args.next().and_then(|s| s.parse().ok()).unwrap_or(4)).expect("type 1..15");
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(800);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let t = ty.generate(n, 5);
    println!(
        "matrix: type {} ({}), n = {n}, {threads} threads\n",
        ty.index(),
        ty.description()
    );

    let opts = DcOptions {
        threads,
        ..DcOptions::default()
    };
    let dcs: Vec<(&str, Box<dyn TridiagEigensolver>)> = vec![
        (
            "dc-sequential",
            Box::new(SequentialDc::new(DcOptions { threads: 1, ..opts })),
        ),
        ("dc-forkjoin", Box::new(ForkJoinDc::new(opts))),
        ("dc-levelparallel", Box::new(LevelParallelDc::new(opts))),
        ("dc-taskflow", Box::new(TaskFlowDc::new(opts))),
    ];
    for (name, solver) in &dcs {
        let start = Instant::now();
        let eig = solver.solve(&t).expect("solve failed");
        report(
            name,
            start.elapsed().as_secs_f64(),
            &t,
            &eig.values,
            &eig.vectors,
        );
    }

    let mrrr = MrrrSolver::new(MrrrOptions {
        threads,
        ..Default::default()
    });
    let start = Instant::now();
    let (lam, v) = mrrr.solve(&t).expect("mrrr failed");
    report("mrrr", start.elapsed().as_secs_f64(), &t, &lam, &v);

    if n <= 1200 {
        let start = Instant::now();
        let (lam, v) = QrIteration.solve(&t).expect("qr failed");
        report("qr-iteration", start.elapsed().as_secs_f64(), &t, &lam, &v);
    }
}
