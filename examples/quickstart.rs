//! Quickstart: solve a symmetric tridiagonal eigenproblem with the
//! task-flow Divide & Conquer solver.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dcst::prelude::*;

fn main() {
    // The (1,2,1) Toeplitz matrix: eigenvalues are known in closed form,
    // so we can check the answer exactly.
    let n = 500;
    let t = SymTridiag::toeplitz121(n);

    // Solve with the task-flow D&C solver (the paper's algorithm).
    let solver = TaskFlowDc::new(DcOptions::default());
    let eig = solver.solve(&t).expect("solver failed");

    println!("smallest eigenvalues: {:.6?}", &eig.values[..4]);
    println!("largest  eigenvalues: {:.6?}", &eig.values[n - 4..]);

    // Compare against the closed form 2 − 2cos(kπ/(n+1)).
    let mut max_err = 0.0f64;
    for (k, &lam) in eig.values.iter().enumerate() {
        let exact = 2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
        max_err = max_err.max((lam - exact).abs());
    }
    println!("max |lambda - exact|   = {max_err:.3e}");

    // Numerical quality of the eigenvectors (the paper's Figure 9 metrics).
    let orth = orthogonality_error(&eig.vectors);
    let resid = residual_error(
        n,
        |x, y| t.matvec(x, y),
        &eig.values,
        &eig.vectors,
        t.max_norm(),
    );
    println!("orthogonality |I-VVt|/n = {orth:.3e}");
    println!("residual |Tv-lv|/(|T|n) = {resid:.3e}");
    assert!(max_err < 1e-12 && orth < 1e-14 && resid < 1e-14);
    println!("all checks passed");
}
