//! SVD through the task-flow D&C eigensolver — the paper's future-work
//! direction, realized via the Golub–Kahan embedding.
//!
//! ```text
//! cargo run --release --example svd_quickstart
//! ```

use dcst::matrix::{gemm, Matrix};
use dcst::prelude::*;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn main() {
    let n = 150;
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));

    let svd = svd_dense(&a, DcOptions::default()).expect("svd failed");
    println!("largest singular values:  {:.4?}", &svd.s[..4]);
    println!("smallest singular values: {:.4?}", &svd.s[n - 4..]);

    // Verify A = U Σ Vᵀ.
    let mut us = svd.u.clone();
    for (j, &s) in svd.s.iter().enumerate() {
        us.col_mut(j).iter_mut().for_each(|x| *x *= s);
    }
    let mut back = Matrix::zeros(n, n);
    gemm(
        n,
        n,
        n,
        1.0,
        us.as_slice(),
        n,
        svd.vt.as_slice(),
        n,
        0.0,
        back.as_mut_slice(),
        n,
    );
    let mut max_err = 0.0f64;
    for (x, y) in back.as_slice().iter().zip(a.as_slice()) {
        max_err = max_err.max((x - y).abs());
    }
    println!("max |A - U S Vt|        = {max_err:.3e}");
    println!(
        "orthogonality of U       = {:.3e}",
        orthogonality_error(&svd.u)
    );
    println!(
        "orthogonality of V       = {:.3e}",
        orthogonality_error(&svd.vt.transpose())
    );
    assert!(max_err < 1e-11);
    println!("svd verified");
}
