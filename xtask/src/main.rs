//! Workspace maintenance tasks — a thin driver over the `dcst-analyze`
//! static-analysis crate (which owns the lexer, parser, and all rules).
//!
//! * `cargo run -p xtask -- lint` — the original unsafe-audit pass
//!   (unsafe-safety, static-mut, sleep-poll, pool-sync).
//! * `cargo run -p xtask -- analyze` — everything: the lint rules plus
//!   the four analysis passes (atomic-ordering manifest conformance
//!   against `specs/orderings.toml`, hot-path purity for `// dcst-hot`
//!   fns, feature-gate symmetry of the two-`mod imp` idiom, and the
//!   static task-footprint lint). Options:
//!   * `--report FILE` — also write the violation list to FILE (always
//!     written, even when empty, so CI can upload it as an artifact).
//!   * `--emit-orderings` — print a manifest skeleton for every atomic
//!     site currently in scope, for classifying new sites.
//!
//! Both subcommands parse the tree exactly once and exit non-zero on any
//! violation. Waive a violation on line N with `xtask-lint:
//! allow(<rule>)` in a comment on line N or N-1 — sparingly, with
//! justification (the hot-path rule demands one).

use dcst_analyze::rules::orderings;
use dcst_analyze::{rules, Violation, Workspace};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run(Mode::Lint, &args[1..]),
        Some("analyze") => run(Mode::Analyze, &args[1..]),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- lint | analyze [--report FILE] [--emit-orderings]"
            );
            ExitCode::from(2)
        }
    }
}

#[derive(PartialEq)]
enum Mode {
    Lint,
    Analyze,
}

fn run(mode: Mode, opts: &[String]) -> ExitCode {
    let mut report: Option<PathBuf> = None;
    let mut emit_orderings = false;
    let mut it = opts.iter();
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--report" => match it.next() {
                Some(p) => report = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--report needs a file argument");
                    return ExitCode::from(2);
                }
            },
            "--emit-orderings" => emit_orderings = true,
            other => {
                eprintln!("unknown option `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = workspace_root();
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if emit_orderings {
        print!("{}", orderings::emit_skeleton(&ws));
        return ExitCode::SUCCESS;
    }

    let violations = match mode {
        Mode::Lint => rules::run_legacy(&ws),
        Mode::Analyze => {
            let manifest_path = root.join(orderings::MANIFEST_PATH);
            let manifest = std::fs::read_to_string(&manifest_path)
                .map_err(|e| format!("{}: {e}", manifest_path.display()));
            rules::run_full(&ws, manifest.as_deref().map_err(String::clone))
        }
    };

    if let Some(path) = &report {
        if let Err(e) = write_report(path, &violations) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    let what = if mode == Mode::Lint {
        "lint"
    } else {
        "analyze"
    };
    if violations.is_empty() {
        println!("xtask {what}: {} files scanned, clean", ws.files.len());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!(
            "xtask {what}: {} violation(s) in {} files scanned",
            violations.len(),
            ws.files.len()
        );
        ExitCode::FAILURE
    }
}

fn write_report(path: &std::path::Path, violations: &[Violation]) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut f = std::fs::File::create(path)?;
    for v in violations {
        writeln!(f, "{v}")?;
    }
    writeln!(f, "total: {} violation(s)", violations.len())?;
    Ok(())
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask, so the workspace root is one level up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent directory")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The real tree must stay clean under the full rule set — the same
    /// check CI runs, kept as a test so `cargo test -p xtask` fails fast
    /// on a violation introduced anywhere in the workspace.
    #[test]
    fn workspace_is_clean_under_full_analysis() {
        let root = workspace_root();
        let ws = Workspace::load(&root).expect("workspace loads");
        assert!(
            ws.files
                .iter()
                .any(|f| f.rel == "crates/runtime/src/pool.rs"),
            "walker must see the runtime pool"
        );
        let manifest =
            std::fs::read_to_string(root.join(orderings::MANIFEST_PATH)).map_err(|e| e.to_string());
        let violations = rules::run_full(&ws, manifest.as_deref().map_err(String::clone));
        assert!(
            violations.is_empty(),
            "workspace has violations:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// The orderings manifest must stay in lock-step with the tree: the
    /// scope must actually contain atomic sites (else the rule is
    /// vacuous) and the checked-in manifest must parse.
    #[test]
    fn orderings_manifest_parses_and_scope_is_nonempty() {
        let root = workspace_root();
        let ws = Workspace::load(&root).expect("workspace loads");
        let text = std::fs::read_to_string(root.join(orderings::MANIFEST_PATH))
            .expect("specs/orderings.toml exists");
        let sites = dcst_analyze::manifest::parse(&text).expect("manifest parses");
        assert!(!sites.is_empty(), "manifest must not be empty");
        assert!(
            !orderings::find_sites(&ws).is_empty(),
            "scope must contain atomic sites (runtime + vendored deque)"
        );
    }
}
