//! Workspace maintenance tasks.
//!
//! `cargo run -p xtask -- lint` runs the unsafe-audit static pass over
//! every `.rs` file in the repository (excluding `target/`):
//!
//! * **unsafe-safety** — every `unsafe` block and `unsafe impl` must carry
//!   a `// SAFETY:` comment, either trailing on the same line or in the
//!   contiguous comment/attribute run directly above. `unsafe fn`
//!   *declarations* are exempt (the obligation sits at the call sites;
//!   `clippy::missing_safety_doc` already polices public ones).
//! * **static-mut** — `static mut` items are banned outright.
//! * **sleep-poll** — `sleep`-based polling is banned inside
//!   `crates/runtime` (the scheduler must park on condvars, never poll).
//! * **pool-sync** — `crates/runtime/src/pool.rs` must obtain every sync
//!   primitive through `crate::dcst_sync` (so the loom-lite model checker
//!   can swap them out); direct `std::sync::{Mutex,Condvar,RwLock,atomic}`,
//!   `parking_lot::` or `crossbeam_deque::` references are banned.
//!
//! A violation on line N can be waived by putting
//! `xtask-lint: allow(<rule>)` in a comment on line N or N-1 — use
//! sparingly, with justification.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root, &mut files);
    files.sort();
    let mut violations = Vec::new();
    for path in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask lint: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        violations.extend(lint_file(&rel, &src));
    }
    if violations.is_empty() {
        println!("xtask lint: {} files scanned, clean", files.len());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
        eprintln!(
            "xtask lint: {} violation(s) in {} files scanned",
            violations.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask, so the workspace root is one level up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent directory")
        .to_path_buf()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[derive(Debug)]
struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

/// Lint one file. `rel` is the path relative to the workspace root with
/// forward slashes (used for path-scoped rules).
fn lint_file(rel: &str, src: &str) -> Vec<Violation> {
    let raw: Vec<&str> = src.lines().collect();
    let stripped = strip_comments_and_strings(src);
    debug_assert_eq!(raw.len(), stripped.len());
    let mut out = Vec::new();

    let allowed = |rule: &str, line_idx: usize| -> bool {
        let marker = format!("xtask-lint: allow({rule})");
        raw[line_idx].contains(&marker) || (line_idx > 0 && raw[line_idx - 1].contains(&marker))
    };

    // --- unsafe-safety + static-mut (workspace-wide) ---
    for (i, code) in stripped.iter().enumerate() {
        for kind in unsafe_uses(code, &stripped, i) {
            if kind == UnsafeKind::Fn {
                continue; // declarations carry a `# Safety` doc contract instead
            }
            if !has_safety_comment(&raw, i) && !allowed("unsafe-safety", i) {
                out.push(Violation {
                    file: rel.to_string(),
                    line: i + 1,
                    rule: "unsafe-safety",
                    message: format!(
                        "`unsafe {}` without a `// SAFETY:` comment (same line or \
                         within the few lines above)",
                        if kind == UnsafeKind::Impl {
                            "impl"
                        } else {
                            "block"
                        }
                    ),
                });
            }
        }
        if has_static_mut(code) && !allowed("static-mut", i) {
            out.push(Violation {
                file: rel.to_string(),
                line: i + 1,
                rule: "static-mut",
                message: "`static mut` is banned (use atomics or a lock)".into(),
            });
        }
    }

    // --- sleep-poll (crates/runtime only) ---
    if rel.starts_with("crates/runtime/") {
        for (i, code) in stripped.iter().enumerate() {
            if has_word_call(code, "sleep") && !allowed("sleep-poll", i) {
                out.push(Violation {
                    file: rel.to_string(),
                    line: i + 1,
                    rule: "sleep-poll",
                    message: "sleep-based polling is banned in the runtime; park on a \
                              condvar instead"
                        .into(),
                });
            }
        }
    }

    // --- pool-sync (the worker pool must route sync through dcst_sync) ---
    if rel == "crates/runtime/src/pool.rs" {
        const BANNED: &[&str] = &[
            "parking_lot::",
            "crossbeam_deque::",
            "std::sync::Mutex",
            "std::sync::Condvar",
            "std::sync::RwLock",
            "std::sync::atomic",
        ];
        for (i, code) in stripped.iter().enumerate() {
            for pat in BANNED {
                if code.contains(pat) && !allowed("pool-sync", i) {
                    out.push(Violation {
                        file: rel.to_string(),
                        line: i + 1,
                        rule: "pool-sync",
                        message: format!(
                            "direct `{pat}` use in the pool; import it from \
                             `crate::dcst_sync` so the model checker can instrument it"
                        ),
                    });
                }
            }
        }
    }

    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnsafeKind {
    Block,
    Impl,
    Fn,
}

/// Classify each `unsafe` keyword on stripped line `i` by its following
/// token (which may sit on a later line).
fn unsafe_uses(code: &str, stripped: &[String], i: usize) -> Vec<UnsafeKind> {
    let mut found = Vec::new();
    let bytes = code.as_bytes();
    let mut pos = 0;
    while let Some(off) = code[pos..].find("unsafe") {
        let start = pos + off;
        let end = start + "unsafe".len();
        let left_ok = start == 0 || !is_ident_char(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_char(bytes[end]);
        if left_ok && right_ok {
            let tail = next_token(&code[end..], stripped, i);
            found.push(match tail.as_deref() {
                Some("fn") => UnsafeKind::Fn,
                Some("impl") => UnsafeKind::Impl,
                _ => UnsafeKind::Block,
            });
        }
        pos = end;
    }
    found
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// First word-or-symbol token in `rest`, falling through to later stripped
/// lines when the current one ends.
fn next_token(rest: &str, stripped: &[String], i: usize) -> Option<String> {
    let mut sources: Vec<&str> = vec![rest];
    for line in stripped.iter().skip(i + 1).take(3) {
        sources.push(line);
    }
    for src in sources {
        let trimmed = src.trim_start();
        if trimmed.is_empty() {
            continue;
        }
        let word: String = trimmed
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if word.is_empty() {
            return Some(trimmed.chars().take(1).collect());
        }
        return Some(word);
    }
    None
}

fn has_static_mut(code: &str) -> bool {
    let mut pos = 0;
    while let Some(off) = code[pos..].find("static") {
        let start = pos + off;
        let end = start + "static".len();
        let bytes = code.as_bytes();
        let left_ok = start == 0 || (!is_ident_char(bytes[start - 1]) && bytes[start - 1] != b'\'');
        let right_is_mut =
            code[end..].trim_start().starts_with("mut ") || code[end..].trim_start() == "mut";
        if left_ok && right_is_mut {
            return true;
        }
        pos = end;
    }
    false
}

fn has_word_call(code: &str, word: &str) -> bool {
    let mut pos = 0;
    while let Some(off) = code[pos..].find(word) {
        let start = pos + off;
        let end = start + word.len();
        let bytes = code.as_bytes();
        let left_ok = start == 0 || !is_ident_char(bytes[start - 1]);
        let right_is_call = code[end..].trim_start().starts_with('(');
        if left_ok && right_is_call {
            return true;
        }
        pos = end;
    }
    false
}

/// True when line `i` (0-based, raw text) carries a `SAFETY:` marker on the
/// same line or within the window of lines directly above it. The window
/// (rather than strict contiguity) lets one comment cover the common
/// pattern of several adjacent `unsafe` borrows it jointly justifies.
fn has_safety_comment(raw: &[&str], i: usize) -> bool {
    const WINDOW: usize = 8;
    let lo = i.saturating_sub(WINDOW);
    raw[lo..=i].iter().any(|l| l.contains("SAFETY:"))
}

/// Replace the contents of comments, string literals, and char literals
/// with spaces, preserving line structure, so keyword scans never match
/// inside text. Handles nested block comments, escaped quotes, and raw
/// strings (`r"…"`, `r#"…"#`, byte variants).
fn strip_comments_and_strings(src: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
    }
    let mut state = St::Code;
    let mut out = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = src.chars().collect();
    let mut k = 0;
    while k < chars.len() {
        let c = chars[k];
        let next = chars.get(k + 1).copied();
        if c == '\n' {
            if state == St::LineComment {
                state = St::Code;
            }
            out.push(std::mem::take(&mut cur));
            k += 1;
            continue;
        }
        match state {
            St::Code => match c {
                '/' if next == Some('/') => {
                    state = St::LineComment;
                    cur.push_str("  ");
                    k += 2;
                }
                '/' if next == Some('*') => {
                    state = St::BlockComment(1);
                    cur.push_str("  ");
                    k += 2;
                }
                '"' => {
                    state = St::Str;
                    cur.push(' ');
                    k += 1;
                }
                'r' | 'b'
                    if raw_string_hashes(&chars, k).is_some()
                        && (k == 0 || !is_ident_char(chars[k - 1] as u8)) =>
                {
                    let hashes = raw_string_hashes(&chars, k).unwrap();
                    // Skip prefix (r/br + hashes + opening quote).
                    let mut skip = 1 + hashes + 1;
                    if c == 'b' {
                        skip += 1;
                    }
                    for _ in 0..skip {
                        cur.push(' ');
                    }
                    k += skip;
                    state = St::RawStr(hashes);
                }
                '\'' => {
                    // Char literal vs lifetime: consume `'x'` / `'\…'`,
                    // otherwise emit the tick and move on.
                    if next == Some('\\') {
                        let mut j = k + 2;
                        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                            j += 1;
                        }
                        for _ in k..=j.min(chars.len() - 1) {
                            cur.push(' ');
                        }
                        k = j + 1;
                    } else if chars.get(k + 2) == Some(&'\'') {
                        cur.push_str("   ");
                        k += 3;
                    } else {
                        // Lifetime tick: keep it, so `&'static mut` is not
                        // mistaken for a `static mut` item downstream.
                        cur.push('\'');
                        k += 1;
                    }
                }
                _ => {
                    cur.push(c);
                    k += 1;
                }
            },
            St::LineComment => {
                cur.push(' ');
                k += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    cur.push_str("  ");
                    k += 2;
                    state = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                } else if c == '/' && next == Some('*') {
                    cur.push_str("  ");
                    k += 2;
                    state = St::BlockComment(depth + 1);
                } else {
                    cur.push(' ');
                    k += 1;
                }
            }
            St::Str => match c {
                '\\' => {
                    // Escapes, including the trailing-backslash line
                    // continuation (which must still emit its line).
                    if next == Some('\n') {
                        out.push(std::mem::take(&mut cur));
                    } else {
                        cur.push_str("  ");
                    }
                    k += 2;
                }
                '"' => {
                    cur.push(' ');
                    k += 1;
                    state = St::Code;
                }
                _ => {
                    cur.push(' ');
                    k += 1;
                }
            },
            St::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, k, hashes) {
                    for _ in 0..=hashes {
                        cur.push(' ');
                    }
                    k += 1 + hashes;
                    state = St::Code;
                } else {
                    cur.push(' ');
                    k += 1;
                }
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// If position `k` starts a raw-string prefix (`r"`, `r#"`, `br##"`, …),
/// return the number of `#`s; otherwise None.
fn raw_string_hashes(chars: &[char], k: usize) -> Option<usize> {
    let mut j = k;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

fn closes_raw(chars: &[char], k: usize, hashes: usize) -> bool {
    (1..=hashes).all(|h| chars.get(k + h) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, src: &str) -> Vec<String> {
        lint_file(rel, src)
            .into_iter()
            .map(|v| format!("{}:{}", v.rule, v.line))
            .collect()
    }

    #[test]
    fn unsafe_block_requires_safety_comment() {
        let bad = "fn f() {\n    let x = unsafe { g() };\n}\n";
        assert_eq!(lint("a.rs", bad), vec!["unsafe-safety:2"]);
        let good = "fn f() {\n    // SAFETY: g is fine here.\n    let x = unsafe { g() };\n}\n";
        assert!(lint("a.rs", good).is_empty());
        let trailing = "fn f() {\n    let x = unsafe { g() }; // SAFETY: fine.\n}\n";
        assert!(lint("a.rs", trailing).is_empty());
    }

    #[test]
    fn unsafe_impl_requires_comment_but_unsafe_fn_is_exempt() {
        assert_eq!(
            lint("a.rs", "unsafe impl Send for X {}\n"),
            vec!["unsafe-safety:1"]
        );
        assert!(lint(
            "a.rs",
            "// SAFETY: no interior refs.\nunsafe impl Send for X {}\n"
        )
        .is_empty());
        assert!(lint("a.rs", "pub unsafe fn f() {}\n").is_empty());
        assert!(lint("a.rs", "type F = unsafe fn(usize);\n").is_empty());
    }

    #[test]
    fn unsafe_in_comments_and_strings_is_ignored() {
        let src = "// this unsafe { } is prose\nlet s = \"unsafe { }\";\n";
        assert!(lint("a.rs", src).is_empty());
    }

    #[test]
    fn static_mut_is_flagged_but_static_lifetime_is_not() {
        assert_eq!(
            lint("a.rs", "static mut X: u32 = 0;\n"),
            vec!["static-mut:1"]
        );
        assert!(lint("a.rs", "fn f(x: &'static mut u32) {}\n").is_empty());
        assert!(lint("a.rs", "static X: u32 = 0;\n").is_empty());
    }

    #[test]
    fn sleep_is_scoped_to_runtime() {
        let src = "fn f() { std::thread::sleep(d); }\n";
        assert_eq!(
            lint("crates/runtime/src/pool.rs", src),
            vec!["sleep-poll:1"]
        );
        assert!(lint("crates/matrix/src/pool.rs", src).is_empty());
    }

    #[test]
    fn pool_sync_primitives_must_come_from_dcst_sync() {
        let src = "use parking_lot::Mutex;\nuse std::sync::Arc;\n";
        assert_eq!(lint("crates/runtime/src/pool.rs", src), vec!["pool-sync:1"]);
        assert!(lint("crates/runtime/src/share.rs", src).is_empty());
    }

    #[test]
    fn allow_marker_waives_a_violation() {
        let src = "// xtask-lint: allow(static-mut) — FFI shim\nstatic mut X: u32 = 0;\n";
        assert!(lint("a.rs", src).is_empty());
    }

    #[test]
    fn strip_handles_nested_and_raw_forms() {
        let src = "let a = /* unsafe /* nested */ still */ 1;\nlet b = r#\"static mut\"#;\nlet c = '\"';\nlet d = \"x\";\n";
        let s = strip_comments_and_strings(src);
        assert!(!s.iter().any(|l| l.contains("unsafe")));
        assert!(!s.iter().any(|l| l.contains("static")));
        assert!(s[3].contains("let d ="));
    }

    #[test]
    fn multiline_unsafe_classification() {
        // `unsafe` at end of line, `impl` on the next one.
        let src = "unsafe\nimpl Send for X {}\n";
        assert_eq!(lint("a.rs", src), vec!["unsafe-safety:1"]);
    }
}
