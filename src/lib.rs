//! Umbrella crate for the task-flow Divide & Conquer symmetric tridiagonal
//! eigensolver workspace (IPDPS 2015 reproduction).
//!
//! Re-exports the public API of every sub-crate so downstream users can
//! depend on a single crate:
//!
//! ```
//! use dcst::prelude::*;
//!
//! let t = SymTridiag::toeplitz121(32);
//! let eig = TaskFlowDc::new(DcOptions::default()).solve(&t).unwrap();
//! assert_eq!(eig.values.len(), 32);
//! ```

pub use dcst_core as core;
pub use dcst_matrix as matrix;
pub use dcst_mrrr as mrrr;
pub use dcst_qriter as qriter;
pub use dcst_runtime as runtime;
pub use dcst_secular as secular;
pub use dcst_serve as serve;
pub use dcst_svd as svd;
pub use dcst_tridiag as tridiag;

/// The most common imports in one place.
pub mod prelude {
    pub use dcst_core::{
        DcOptions, Eigen, ForkJoinDc, LevelParallelDc, SequentialDc, SolveMode, TaskFlowDc,
        TridiagEigensolver,
    };
    pub use dcst_matrix::{orthogonality_error, residual_error, Matrix};
    pub use dcst_mrrr::MrrrSolver;
    pub use dcst_qriter::QrIteration;
    pub use dcst_runtime::Runtime;
    pub use dcst_svd::{svd_bidiagonal, svd_dense, Bidiagonal};
    pub use dcst_tridiag::{MatrixType, SymTridiag};
}
